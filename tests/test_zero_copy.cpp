// Unit + integration tests for the zero-copy packet path: PacketBuffer
// semantics (sharing, headroom prepend, copy-on-write accounting) and the
// copy-counter proof that multi-hop forwarding performs zero payload copies.
#include <gtest/gtest.h>

#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/transport/udp.hpp"

using namespace tcplp;

TEST(PacketBuffer, CopyAndSubviewShareStorage) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 100));
    PacketBuffer b = a;
    EXPECT_TRUE(a.sharesStorageWith(b));
    EXPECT_EQ(a.refCount(), 2u);
    EXPECT_EQ(a, b);

    PacketBuffer tail = a.subview(40);
    EXPECT_TRUE(tail.sharesStorageWith(a));
    EXPECT_EQ(tail.size(), 60u);
    EXPECT_EQ(tail[0], a[40]);
    EXPECT_EQ(a.refCount(), 3u);
}

TEST(PacketBuffer, CopyForWriteUniqueIsFree) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 32));
    const auto before = PacketBuffer::stats().deepCopies;
    a.copyForWrite();  // already unique: no-op
    EXPECT_EQ(PacketBuffer::stats().deepCopies, before);
    a.mutableData()[0] = 0xff;
    EXPECT_EQ(a[0], 0xff);
}

TEST(PacketBuffer, CopyForWriteOnSharedDuplicatesAndCounts) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 32));
    PacketBuffer b = a;
    const auto before = PacketBuffer::stats().deepCopies;
    b.copyForWrite();
    EXPECT_EQ(PacketBuffer::stats().deepCopies, before + 1);
    EXPECT_FALSE(a.sharesStorageWith(b));
    EXPECT_EQ(a, b);  // contents preserved
    b.mutableData()[0] = std::uint8_t(~b[0]);
    EXPECT_NE(a[0], b[0]);  // a untouched
}

TEST(PacketBuffer, PrependUsesHeadroomInPlace) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 50), /*headroom=*/16);
    const std::uint8_t* payloadPtr = a.data();
    const auto before = PacketBuffer::stats().deepCopies;
    const Bytes hdr = toBytes("HDR");
    a.prepend(hdr);
    EXPECT_EQ(PacketBuffer::stats().deepCopies, before);  // in place
    EXPECT_EQ(a.size(), 53u);
    EXPECT_EQ(a.data() + 3, payloadPtr);  // grew downward into headroom
    EXPECT_EQ(a[0], 'H');
    EXPECT_TRUE(matchesPattern(0, BytesView(a.data() + 3, 50)));
    EXPECT_EQ(a.headroom(), 13u);
}

TEST(PacketBuffer, PrependOnSharedFallsBackToCountedCopy) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 50));
    PacketBuffer b = a;  // shared: in-place prepend would corrupt b
    const auto before = PacketBuffer::stats().deepCopies;
    a.prepend(toBytes("X"));
    EXPECT_EQ(PacketBuffer::stats().deepCopies, before + 1);
    EXPECT_FALSE(a.sharesStorageWith(b));
    EXPECT_EQ(a.size(), 51u);
    EXPECT_EQ(b.size(), 50u);
    EXPECT_TRUE(matchesPattern(0, BytesView(b.data(), 50)));
}

TEST(PacketBuffer, ComposeWriteAtTrim) {
    const Bytes body = patternBytes(0, 20);
    PacketBuffer w = PacketBuffer::compose(toBytes("AB"), body);
    EXPECT_EQ(w.size(), 22u);
    EXPECT_EQ(w[0], 'A');
    EXPECT_EQ(w[2], body[0]);

    PacketBuffer g = PacketBuffer::allocate(8, /*headroom=*/0);
    g.writeAt(4, toBytes("zzzz"));
    EXPECT_EQ(g[3], 0);
    EXPECT_EQ(g[4], 'z');

    w.trimFront(2);
    EXPECT_EQ(w.size(), 20u);
    EXPECT_EQ(w[0], body[0]);
    w.trimEnd(10);
    EXPECT_EQ(w.size(), 10u);
}

TEST(PacketBuffer, MoveLeavesSourceEmpty) {
    PacketBuffer a = PacketBuffer::copyOf(patternBytes(0, 10));
    PacketBuffer b = std::move(a);
    EXPECT_EQ(b.size(), 10u);
    EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.unique());
}

TEST(ZeroCopyPath, UnfragmentedDecodeIsASubview) {
    // Reassembler delivery of a whole datagram shares the frame storage.
    sim::Simulator simulator;
    ip6::Packet got;
    lowpan::Reassembler reasm(simulator,
                              [&](ip6::Packet p, ip6::ShortAddr) { got = std::move(p); });
    ip6::Packet p;
    p.src = ip6::Address::meshLocal(1);
    p.dst = ip6::Address::meshLocal(2);
    p.payload = PacketBuffer::copyOf(patternBytes(0, 60));
    auto frames = lowpan::encodeDatagram(p, 1, 2, 7, 104);
    ASSERT_EQ(frames.size(), 1u);
    reasm.input(1, 2, frames[0]);
    ASSERT_EQ(got.payload.size(), 60u);
    EXPECT_TRUE(got.payload.sharesStorageWith(frames[0]));
}

// The tentpole acceptance test: a 700-byte datagram crosses a 3-hop mesh in
// fragment-forwarding mode. Every relay must forward the fragments by
// reference — zero payload deep copies anywhere in the run. Copies that are
// part of deliberate endpoint work (origination compose at the mote,
// reassembly gather at the border router) are accounted separately and do
// not appear in the deepCopies counter.
TEST(ZeroCopyPath, ThreeHopForwardPerformsZeroPayloadCopies) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = false;
    auto tb = harness::Testbed::line(3, cfg);

    mesh::Node& mote = *tb->findNode(12);
    mesh::Node& relayA = *tb->findNode(11);
    mesh::Node& relayB = *tb->findNode(10);
    transport::UdpStack moteUdp(mote);
    transport::UdpStack cloudUdp(tb->cloud());

    Bytes got;
    cloudUdp.bind(9000, [&](const transport::UdpDatagram& d) { got = d.payload; });

    PacketBuffer::resetStats();
    moteUdp.sendTo(tb->cloud().address(), 9000, 1234, patternBytes(0, 700));
    tb->simulator().runUntil(30 * sim::kSecond);

    // Delivered intact across mote -> relay -> relay -> border -> cloud.
    ASSERT_EQ(got.size(), 700u);
    EXPECT_TRUE(matchesPattern(0, got));

    // Both relays forwarded raw fragments without reassembling...
    EXPECT_EQ(relayA.reassembler()->stats().delivered, 0u);
    EXPECT_EQ(relayB.reassembler()->stats().delivered, 0u);
    // ...and without touching a single payload byte.
    EXPECT_EQ(relayA.stats().payloadDeepCopies, 0u);
    EXPECT_EQ(relayB.stats().payloadDeepCopies, 0u);
    // Nothing anywhere in the stack fell back to a copy-on-write or a
    // prepend copy: the whole run is deep-copy-free.
    EXPECT_EQ(PacketBuffer::stats().deepCopies, 0u);
    EXPECT_EQ(PacketBuffer::stats().copiedBytes, 0u);
}

TEST(ZeroCopyPath, TagCollisionFallsBackToSingleCountedCopy) {
    // Force the relay's outgoing-tag collision path: two FRAG1s from
    // different origins carrying the same tag arrive at one relay. The
    // second datagram must still be forwarded (correctness) at the cost of
    // exactly one copy-on-write per rewritten fragment.
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = false;
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& relay = *tb->findNode(10);

    // Hand-craft two fragmented datagrams with identical tags, as if from
    // two different upstream senders (MAC src 11 and 77).
    ip6::Packet p;
    p.src = ip6::Address::meshLocal(11);
    p.dst = tb->cloud().address();
    p.payload = PacketBuffer::copyOf(patternBytes(0, 300));
    auto framesA = lowpan::encodeDatagram(p, 11, 10, /*tag=*/5, 104);
    ip6::Packet q;
    q.src = ip6::Address::meshLocal(77);
    q.dst = tb->cloud().address();
    q.payload = PacketBuffer::copyOf(patternBytes(1, 300));
    auto framesB = lowpan::encodeDatagram(q, 77, 10, /*tag=*/5, 104);

    PacketBuffer::resetStats();
    // Interleave FRAG1s so both datagrams are simultaneously in flight.
    relay.macInput(11, framesA[0]);
    relay.macInput(77, framesB[0]);
    EXPECT_EQ(relay.stats().payloadDeepCopies, 1u);
    EXPECT_EQ(PacketBuffer::stats().deepCopies, 1u);
    // Continuations of the retagged datagram are rewritten too.
    relay.macInput(77, framesB[1]);
    EXPECT_EQ(relay.stats().payloadDeepCopies, 2u);
}
