// Unit tests: discrete-event simulator core.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::sim;

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(300, [&] { order.push_back(3); });
    simulator.schedule(100, [&] { order.push_back(1); });
    simulator.schedule(200, [&] { order.push_back(2); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.now(), 300);
}

TEST(Simulator, SimultaneousEventsFifo) {
    Simulator simulator;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) simulator.schedule(10, [&order, i] { order.push_back(i); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsFiring) {
    Simulator simulator;
    bool fired = false;
    EventHandle h = simulator.schedule(50, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    simulator.run();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator simulator;
    int count = 0;
    // Self-rescheduling ticker.
    std::function<void()> tick = [&] {
        ++count;
        simulator.schedule(10, tick);
    };
    simulator.schedule(10, tick);
    simulator.runUntil(105);
    EXPECT_EQ(count, 10);
    EXPECT_GE(simulator.now(), 100);
}

TEST(Simulator, NestedSchedulingDuringCallback) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(10, [&] {
        order.push_back(1);
        simulator.schedule(0, [&] { order.push_back(2); });
    });
    simulator.schedule(20, [&] { order.push_back(3); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Timer, RestartReplacesDeadline) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.start(500);  // re-arm
    simulator.runUntil(200);
    EXPECT_EQ(fires, 0);
    simulator.runUntil(600);
    EXPECT_EQ(fires, 1);
}

TEST(Timer, StopPreventsFire) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.stop();
    simulator.run();
    EXPECT_EQ(fires, 0);
}

TEST(EventHandle, SlotReuseDoesNotResurrectOldHandle) {
    Simulator simulator;
    bool aFired = false;
    bool bFired = false;
    EventHandle a = simulator.schedule(50, [&] { aFired = true; });
    a.cancel();  // releases the pooled slot
    // The freed slot is recycled for b; a's stale generation must not alias.
    EventHandle b = simulator.schedule(60, [&] { bFired = true; });
    EXPECT_FALSE(a.pending());
    EXPECT_TRUE(b.pending());
    a.cancel();  // double-cancel through a stale handle: must not touch b
    EXPECT_TRUE(b.pending());
    simulator.run();
    EXPECT_FALSE(aFired);
    EXPECT_TRUE(bFired);
}

TEST(EventHandle, CopiesShareTheEvent) {
    Simulator simulator;
    bool fired = false;
    EventHandle a = simulator.schedule(50, [&] { fired = true; });
    EventHandle copy = a;
    copy.cancel();
    EXPECT_FALSE(a.pending());
    simulator.run();
    EXPECT_FALSE(fired);
}

TEST(EventHandle, HandleGoesStaleAfterFiring) {
    Simulator simulator;
    EventHandle h = simulator.schedule(10, [] {});
    simulator.run();
    EXPECT_FALSE(h.pending());
    // Rescheduling a fired handle must be refused.
    EXPECT_FALSE(simulator.reschedule(h, simulator.now() + 100));
}

TEST(Simulator, RescheduleMovesDeadlineBothWays) {
    Simulator simulator;
    std::vector<int> order;
    EventHandle a = simulator.schedule(300, [&] { order.push_back(1); });
    simulator.schedule(200, [&] { order.push_back(2); });
    // Pull `a` earlier than the other event...
    EXPECT_TRUE(simulator.reschedule(a, 100));
    // ...and push a third event later than everything.
    EventHandle c = simulator.schedule(50, [&] { order.push_back(3); });
    EXPECT_TRUE(simulator.reschedule(c, 400));
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.stats().rescheduled, 2u);
}

TEST(Timer, RestartStormReusesOnePooledEvent) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    // A TCP RTO-style storm: re-arm thousands of times before expiry.
    for (int i = 0; i < 10000; ++i) t.start(100 + (i % 7));
    EXPECT_EQ(simulator.pendingEvents(), 1u);
    // One slab of event records is enough for the whole storm: re-arming
    // reschedules the same pooled record instead of allocating.
    EXPECT_EQ(simulator.stats().scheduled, 1u);
    EXPECT_EQ(simulator.stats().rescheduled, 9999u);
    EXPECT_LE(simulator.stats().poolCapacity, 256u);
    simulator.run();
    EXPECT_EQ(fires, 1);
}

TEST(Timer, ManyTimersRestartingStayDeterministic) {
    // Interleaved restart storms across many timers: firing order must stay
    // the (when, scheduling-seq) total order regardless of pool recycling.
    Simulator simulator;
    std::vector<int> order;
    std::vector<std::unique_ptr<Timer>> timers;
    for (int i = 0; i < 16; ++i) {
        timers.push_back(
            std::make_unique<Timer>(simulator, [&order, i] { order.push_back(i); }));
    }
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 16; ++i) timers[std::size_t(i)]->start(Time(1000 + i));
    }
    simulator.run();
    std::vector<int> expect;
    for (int i = 0; i < 16; ++i) expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(Timer, RearmInsideOwnCallbackKeepsFiring) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] {
        if (++fires < 5) t.start(10);
    });
    t.start(10);
    simulator.run(100);
    EXPECT_EQ(fires, 5);
}

TEST(SmallFn, InlineCapturesAvoidHeap) {
    const auto before = SmallFn::heapFallbacks();
    int x = 0;
    SmallFn small([&x] { ++x; });  // one pointer: inline
    small();
    EXPECT_EQ(x, 1);
    EXPECT_EQ(SmallFn::heapFallbacks(), before);

    struct Big {
        std::uint64_t pad[9];  // 72 B > kInlineBytes
    } big{};
    SmallFn large([big, &x] { x += int(big.pad[0]) + 1; });
    large();
    EXPECT_EQ(x, 2);
    EXPECT_EQ(SmallFn::heapFallbacks(), before + 1);
}

TEST(Simulator, PoolRecyclesSlotsAcrossManyEvents) {
    // A long self-rescheduling run must not grow the pool beyond one slab.
    Simulator simulator;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5000) simulator.schedule(10, tick);
    };
    simulator.schedule(10, tick);
    simulator.run();
    EXPECT_EQ(count, 5000);
    EXPECT_LE(simulator.stats().poolCapacity, 256u);
}

TEST(Rng, DeterministicGivenSeed) {
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        const auto v = r.uniformRange(5, 9);
        ASSERT_GE(v, 5);
        ASSERT_LE(v, 9);
    }
}

TEST(Rng, ChanceFrequency) {
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}
