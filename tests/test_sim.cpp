// Unit tests: discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::sim;

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(300, [&] { order.push_back(3); });
    simulator.schedule(100, [&] { order.push_back(1); });
    simulator.schedule(200, [&] { order.push_back(2); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.now(), 300);
}

TEST(Simulator, SimultaneousEventsFifo) {
    Simulator simulator;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) simulator.schedule(10, [&order, i] { order.push_back(i); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsFiring) {
    Simulator simulator;
    bool fired = false;
    EventHandle h = simulator.schedule(50, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    simulator.run();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator simulator;
    int count = 0;
    // Self-rescheduling ticker.
    std::function<void()> tick = [&] {
        ++count;
        simulator.schedule(10, tick);
    };
    simulator.schedule(10, tick);
    simulator.runUntil(105);
    EXPECT_EQ(count, 10);
    EXPECT_GE(simulator.now(), 100);
}

TEST(Simulator, NestedSchedulingDuringCallback) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(10, [&] {
        order.push_back(1);
        simulator.schedule(0, [&] { order.push_back(2); });
    });
    simulator.schedule(20, [&] { order.push_back(3); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Timer, RestartReplacesDeadline) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.start(500);  // re-arm
    simulator.runUntil(200);
    EXPECT_EQ(fires, 0);
    simulator.runUntil(600);
    EXPECT_EQ(fires, 1);
}

TEST(Timer, StopPreventsFire) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.stop();
    simulator.run();
    EXPECT_EQ(fires, 0);
}

TEST(Rng, DeterministicGivenSeed) {
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        const auto v = r.uniformRange(5, 9);
        ASSERT_GE(v, 5);
        ASSERT_LE(v, 9);
    }
}

TEST(Rng, ChanceFrequency) {
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}
