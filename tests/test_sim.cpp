// Unit tests: discrete-event simulator core.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::sim;

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(300, [&] { order.push_back(3); });
    simulator.schedule(100, [&] { order.push_back(1); });
    simulator.schedule(200, [&] { order.push_back(2); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.now(), 300);
}

TEST(Simulator, SimultaneousEventsFifo) {
    Simulator simulator;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) simulator.schedule(10, [&order, i] { order.push_back(i); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelPreventsFiring) {
    Simulator simulator;
    bool fired = false;
    EventHandle h = simulator.schedule(50, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    simulator.run();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator simulator;
    int count = 0;
    // Self-rescheduling ticker.
    std::function<void()> tick = [&] {
        ++count;
        simulator.schedule(10, tick);
    };
    simulator.schedule(10, tick);
    simulator.runUntil(105);
    EXPECT_EQ(count, 10);
    EXPECT_GE(simulator.now(), 100);
}

TEST(Simulator, NestedSchedulingDuringCallback) {
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(10, [&] {
        order.push_back(1);
        simulator.schedule(0, [&] { order.push_back(2); });
    });
    simulator.schedule(20, [&] { order.push_back(3); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Timer, RestartReplacesDeadline) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.start(500);  // re-arm
    simulator.runUntil(200);
    EXPECT_EQ(fires, 0);
    simulator.runUntil(600);
    EXPECT_EQ(fires, 1);
}

TEST(Timer, StopPreventsFire) {
    Simulator simulator;
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    t.start(100);
    t.stop();
    simulator.run();
    EXPECT_EQ(fires, 0);
}

TEST(EventHandle, SlotReuseDoesNotResurrectOldHandle) {
    Simulator simulator;
    bool aFired = false;
    bool bFired = false;
    EventHandle a = simulator.schedule(50, [&] { aFired = true; });
    a.cancel();  // releases the pooled slot
    // The freed slot is recycled for b; a's stale generation must not alias.
    EventHandle b = simulator.schedule(60, [&] { bFired = true; });
    EXPECT_FALSE(a.pending());
    EXPECT_TRUE(b.pending());
    a.cancel();  // double-cancel through a stale handle: must not touch b
    EXPECT_TRUE(b.pending());
    simulator.run();
    EXPECT_FALSE(aFired);
    EXPECT_TRUE(bFired);
}

TEST(EventHandle, CopiesShareTheEvent) {
    Simulator simulator;
    bool fired = false;
    EventHandle a = simulator.schedule(50, [&] { fired = true; });
    EventHandle copy = a;
    copy.cancel();
    EXPECT_FALSE(a.pending());
    simulator.run();
    EXPECT_FALSE(fired);
}

TEST(EventHandle, HandleGoesStaleAfterFiring) {
    Simulator simulator;
    EventHandle h = simulator.schedule(10, [] {});
    simulator.run();
    EXPECT_FALSE(h.pending());
    // Rescheduling a fired handle must be refused.
    EXPECT_FALSE(simulator.reschedule(h, simulator.now() + 100));
}

TEST(Simulator, RescheduleMovesDeadlineBothWays) {
    Simulator simulator;
    std::vector<int> order;
    EventHandle a = simulator.schedule(300, [&] { order.push_back(1); });
    simulator.schedule(200, [&] { order.push_back(2); });
    // Pull `a` earlier than the other event...
    EXPECT_TRUE(simulator.reschedule(a, 100));
    // ...and push a third event later than everything.
    EventHandle c = simulator.schedule(50, [&] { order.push_back(3); });
    EXPECT_TRUE(simulator.reschedule(c, 400));
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.stats().rescheduled, 2u);
}

// --- Timer-storm suite, run against BOTH scheduler backends ----------------
//
// The binary heap and the hierarchical timer wheel must implement the exact
// same (when, scheduling-seq) total order: every test below runs once per
// backend, and the cross-backend tests replay one scripted storm on each and
// require bit-identical firing logs.

class SchedulerBackends : public ::testing::TestWithParam<SchedulerKind> {
protected:
    SimConfig config(std::uint64_t seed = 1) const { return SimConfig{seed, GetParam()}; }
};

INSTANTIATE_TEST_SUITE_P(
    BothBackends, SchedulerBackends,
    ::testing::Values(SchedulerKind::kBinaryHeap, SchedulerKind::kTimerWheel),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
        return std::string(schedulerKindName(info.param));
    });

TEST_P(SchedulerBackends, RestartStormReusesOnePooledEvent) {
    Simulator simulator(config());
    int fires = 0;
    Timer t(simulator, [&] { ++fires; });
    // A TCP RTO-style storm: re-arm thousands of times before expiry.
    for (int i = 0; i < 10000; ++i) t.start(100 + (i % 7));
    EXPECT_EQ(simulator.pendingEvents(), 1u);
    // One slab of event records is enough for the whole storm: re-arming
    // reschedules the same pooled record instead of allocating.
    EXPECT_EQ(simulator.stats().scheduled, 1u);
    EXPECT_EQ(simulator.stats().rescheduled, 9999u);
    EXPECT_LE(simulator.stats().poolCapacity, 256u);
    simulator.run();
    EXPECT_EQ(fires, 1);
}

TEST_P(SchedulerBackends, ManyTimersRestartingStayDeterministic) {
    // Interleaved restart storms across many timers: firing order must stay
    // the (when, scheduling-seq) total order regardless of pool recycling.
    Simulator simulator(config());
    std::vector<int> order;
    std::vector<std::unique_ptr<Timer>> timers;
    for (int i = 0; i < 16; ++i) {
        timers.push_back(
            std::make_unique<Timer>(simulator, [&order, i] { order.push_back(i); }));
    }
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 16; ++i) timers[std::size_t(i)]->start(Time(1000 + i));
    }
    simulator.run();
    std::vector<int> expect;
    for (int i = 0; i < 16; ++i) expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST_P(SchedulerBackends, RearmInsideOwnCallbackKeepsFiring) {
    Simulator simulator(config());
    int fires = 0;
    Timer t(simulator, [&] {
        if (++fires < 5) t.start(10);
    });
    t.start(10);
    simulator.run(100);
    EXPECT_EQ(fires, 5);
}

TEST_P(SchedulerBackends, CancelMidFlightSkipsExactlyTheCancelled) {
    // Cancel from inside a running callback (the delayed-ACK-quash idiom):
    // event 2's callback cancels events 5 and 9 while 3..11 are pending.
    Simulator simulator(config());
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 12; ++i) {
        handles.push_back(simulator.schedule(Time(100 * (i + 1)),
                                             [&order, i] { order.push_back(i); }));
    }
    handles[2].cancel();
    handles[2] = simulator.schedule(Time(250), [&] {
        order.push_back(2);
        handles[5].cancel();
        handles[9].cancel();
    });
    handles[3].cancel();  // cancel before the run starts, too
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 6, 7, 8, 10, 11}));
    EXPECT_EQ(simulator.stats().cancelled, 4u);
}

TEST_P(SchedulerBackends, RescheduleToEarlierSlotCrossesBuckets) {
    // Pull pending events backwards across wheel-bucket and wheel-level
    // boundaries: far-future events rescheduled to near deadlines (and one
    // near event pushed far out) must still fire in (when, seq) order.
    Simulator simulator(config());
    std::vector<int> order;
    EventHandle farA = simulator.schedule(2 * kMinute, [&] { order.push_back(1); });
    EventHandle farB = simulator.schedule(3 * kHour, [&] { order.push_back(2); });
    EventHandle near = simulator.schedule(5 * kMillisecond, [&] { order.push_back(3); });
    simulator.schedule(10 * kMillisecond, [&] { order.push_back(4); });
    ASSERT_TRUE(simulator.reschedule(farA, 2 * kMillisecond));   // hours -> ticks
    ASSERT_TRUE(simulator.reschedule(farB, 3 * kMillisecond));   // hours -> ticks
    ASSERT_TRUE(simulator.reschedule(near, 30 * kMinute));       // ticks -> level 2+
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
    EXPECT_EQ(simulator.stats().rescheduled, 3u);
}

TEST_P(SchedulerBackends, FarFutureOverflowDeadlines) {
    // Deadlines past the wheel horizon (4 levels x 64 slots x ~1 ms tick
    // ~= 4.8 h) live on the overflow list and must cascade back in as
    // simulated time approaches them — including events scheduled mid-run
    // once the wheel base has advanced by days.
    Simulator simulator(config());
    std::vector<int> order;
    simulator.schedule(3 * 24 * kHour, [&] { order.push_back(5); });
    simulator.schedule(10 * kHour, [&] { order.push_back(3); });
    simulator.schedule(kMillisecond, [&] {
        order.push_back(1);
        simulator.schedule(26 * kHour, [&] { order.push_back(4); });  // re-overflow
        simulator.schedule(kSecond, [&] { order.push_back(2); });
    });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(simulator.now(), 3 * 24 * kHour);
}

TEST_P(SchedulerBackends, SameTickOrderingIsExactMicrosecondOrder) {
    // Events inside one ~1 ms wheel tick (1024 us) still fire in exact
    // microsecond order, with scheduling seq breaking when-ties — the wheel
    // may bucket them together but must not coarsen the order.
    Simulator simulator(config());
    std::vector<int> order;
    simulator.schedule(900, [&] { order.push_back(3); });
    simulator.schedule(100, [&] { order.push_back(1); });
    simulator.schedule(500, [&] { order.push_back(2); });
    simulator.schedule(1000, [&] { order.push_back(4); });  // same tick, later us
    simulator.schedule(1000, [&] { order.push_back(5); });  // when-tie: seq order
    simulator.schedule(1030, [&] { order.push_back(6); });  // next tick
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

namespace {

/// Replays a deterministic pseudo-random storm of schedule / cancel /
/// reschedule / nested-schedule operations and returns the firing log.
std::vector<std::pair<Time, int>> runScriptedStorm(SchedulerKind kind) {
    Simulator simulator(SimConfig{99, kind});
    Rng script(0xfeedULL);  // drives the storm, independent of the sim RNG
    std::vector<std::pair<Time, int>> log;
    std::vector<EventHandle> handles;
    int nextId = 0;

    const auto randomDelay = [&script]() -> Time {
        switch (script.uniformInt(4)) {
            case 0: return Time(script.uniformInt(900));                  // same tick
            case 1: return Time(script.uniformInt(60'000));               // level 0/1
            case 2: return Time(script.uniformInt(30 * kMinute));         // level 2+
            default: return Time(script.uniformInt(12 * kHour));          // overflow
        }
    };

    for (int i = 0; i < 600; ++i) {
        const int id = nextId++;
        handles.push_back(simulator.schedule(randomDelay(), [&log, &simulator, id] {
            log.emplace_back(simulator.now(), id);
        }));
    }
    // Mutate: cancel some, reschedule others (earlier and later).
    for (int i = 0; i < 300; ++i) {
        EventHandle& h = handles[std::size_t(script.uniformInt(handles.size()))];
        if (script.chance(0.4)) {
            h.cancel();
        } else {
            simulator.reschedule(h, simulator.now() + randomDelay());
        }
    }
    // A ticker that keeps scheduling new work while the storm drains.
    std::function<void()> tick = [&] {
        const int id = nextId++;
        log.emplace_back(simulator.now(), -1);
        simulator.schedule(randomDelay(), [&log, &simulator, id] {
            log.emplace_back(simulator.now(), id);
        });
        if (log.size() < 900) simulator.schedule(kSecond + Time(script.uniformInt(kMinute)), tick);
    };
    simulator.schedule(10 * kMillisecond, tick);
    simulator.run(5000);
    return log;
}

}  // namespace

TEST(SchedulerEquivalence, WheelAndHeapFireIdenticalStormLogs) {
    const auto heap = runScriptedStorm(SchedulerKind::kBinaryHeap);
    const auto wheel = runScriptedStorm(SchedulerKind::kTimerWheel);
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap, wheel);
}

TEST(SmallFn, InlineCapturesAvoidHeap) {
    const auto before = SmallFn::heapFallbacks();
    int x = 0;
    SmallFn small([&x] { ++x; });  // one pointer: inline
    small();
    EXPECT_EQ(x, 1);
    EXPECT_EQ(SmallFn::heapFallbacks(), before);

    struct Big {
        std::uint64_t pad[9];  // 72 B > kInlineBytes
    } big{};
    SmallFn large([big, &x] { x += int(big.pad[0]) + 1; });
    large();
    EXPECT_EQ(x, 2);
    EXPECT_EQ(SmallFn::heapFallbacks(), before + 1);
}

TEST(Simulator, PoolRecyclesSlotsAcrossManyEvents) {
    // A long self-rescheduling run must not grow the pool beyond one slab.
    Simulator simulator;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5000) simulator.schedule(10, tick);
    };
    simulator.schedule(10, tick);
    simulator.run();
    EXPECT_EQ(count, 5000);
    EXPECT_LE(simulator.stats().poolCapacity, 256u);
}

TEST(Rng, DeterministicGivenSeed) {
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        const auto v = r.uniformRange(5, 9);
        ASSERT_GE(v, 5);
        ASSERT_LE(v, 9);
    }
}

TEST(Rng, ChanceFrequency) {
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}

// --- deriveStream: the per-run-point stream keying every sharded sweep -----
//
// Every parallel sweep and campaign keys a point's RNG stream on its grid
// position via deriveStream. If its mixing constants (or the xoshiro
// seeding behind it) ever change — even "harmlessly" — every golden
// artifact and every pinned digest in the repo silently shifts. The pinned
// values below make such a change fail loudly; they are pure integer
// arithmetic, so they must hold on every platform and compiler.

TEST(RngStreams, DeriveStreamPinnedValues) {
    EXPECT_EQ(Rng::deriveStream(1, 0), 0x910a2dec89025cc1ULL);
    EXPECT_EQ(Rng::deriveStream(1, 1), 0xbeeb8da1658eec67ULL);
    EXPECT_EQ(Rng::deriveStream(42, 7), 0xccf635ee9e9e2fa4ULL);
    // First draw of the derived stream: pins the seed -> xoshiro expansion.
    Rng r(Rng::deriveStream(42, 7));
    EXPECT_EQ(r.next(), 0xd156fe7ba6b2616eULL);
}

TEST(RngStreams, DerivedDigestStableAcrossPlatforms) {
    // The cross-refactor determinism oracle in one assertion: seed a stream
    // from a derived key, consume 1000 draws, pin the order-sensitive state
    // digest. Shift/xor/multiply only — platform-independent.
    Rng r(Rng::deriveStream(42, 7));
    for (int i = 0; i < 1000; ++i) r.next();
    EXPECT_EQ(r.stateDigest(), 0xcfeed6755cd25666ULL);
}

TEST(RngStreams, AdjacentStreamsAreIndependent) {
    // Cross-correlation smoke over adjacent grid positions (the pairing a
    // sweep actually produces): bitwise agreement of paired draws should be
    // ~50%, and the sample correlation of paired uniforms ~0.
    Rng a(Rng::deriveStream(42, 0));
    Rng b(Rng::deriveStream(42, 1));
    constexpr int kDraws = 100000;
    std::uint64_t agreeingBits = 0;
    double sumA = 0, sumB = 0, sumAB = 0, sumA2 = 0, sumB2 = 0;
    for (int i = 0; i < kDraws; ++i) {
        const std::uint64_t xa = a.next();
        const std::uint64_t xb = b.next();
        agreeingBits += std::uint64_t(64 - __builtin_popcountll(xa ^ xb));
        const double ua = double(xa >> 11) * (1.0 / 9007199254740992.0);
        const double ub = double(xb >> 11) * (1.0 / 9007199254740992.0);
        sumA += ua;
        sumB += ub;
        sumAB += ua * ub;
        sumA2 += ua * ua;
        sumB2 += ub * ub;
    }
    const double bitAgreement = double(agreeingBits) / double(kDraws) / 64.0;
    EXPECT_NEAR(bitAgreement, 0.5, 0.005);
    const double n = kDraws;
    const double cov = sumAB / n - (sumA / n) * (sumB / n);
    const double varA = sumA2 / n - (sumA / n) * (sumA / n);
    const double varB = sumB2 / n - (sumB / n) * (sumB / n);
    const double corr = cov / std::sqrt(varA * varB);
    EXPECT_LT(std::abs(corr), 0.02);
}

TEST(RngStreams, StreamIdsAndBaseSeedsBothSeparate) {
    // No collisions across a realistic sweep's worth of derived seeds.
    std::vector<std::uint64_t> seen;
    for (std::uint64_t base : {1ULL, 42ULL, 1000003ULL}) {
        for (std::uint64_t id = 0; id < 256; ++id)
            seen.push_back(Rng::deriveStream(base, id));
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}
