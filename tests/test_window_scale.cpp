// High-BDP frontier: RFC 7323 window scaling, receive-buffer autotuning,
// and MAC frame aggregation.
//
// Three suites (named so CI's ASan rerun filter can pick them up):
//
//  WindowScale  Shift-aware codec properties (round-trip for shifts 0..14,
//               clamping, the SYN exemption), handshake negotiation in both
//               directions, the >14 peer-shift clamp via a crafted SYN-ACK,
//               and the window-handling bugfix pins: RFC 793 SND.WL1/WL2
//               ordering, the challenge-ACK guard, and receiver-side SWS
//               avoidance (RFC 1122 §4.2.3.3).
//  Autotune     DRS-style receive-buffer growth stops exactly at the
//               configured budget; no budget (or one at/below the initial
//               capacity) means no growth; RecvBuffer::grow preserves both
//               in-sequence and out-of-order bytes.
//  MacAgg       A-MPDU-style bursts amortize the CSMA ladder across queued
//               frames; the stock aggFrames=1 config never aggregates.
#include <gtest/gtest.h>

#include <algorithm>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/mac/csma.hpp"
#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/segment.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

/// Client/server sockets over a pipe, each with its own config; the accept
/// callback captures the server-side socket so tests can inspect both TCBs.
struct WsPair {
    sim::Simulator simulator{7};
    harness::Pipe pipe;
    tcp::TcpStack clientStack;
    tcp::TcpStack serverStack;
    tcp::TcpSocket* client = nullptr;
    tcp::TcpSocket* server = nullptr;
    std::function<void(tcp::TcpSocket&)> onAccept;  // set before connecting

    WsPair(const tcp::TcpConfig& clientCfg, const tcp::TcpConfig& serverCfg,
           bool connect = true)
        : pipe(simulator), clientStack(pipe.a()), serverStack(pipe.b()) {
        serverStack.listen(80, serverCfg, [this](tcp::TcpSocket& s) {
            server = &s;
            if (onAccept) onAccept(s);
        });
        client = &clientStack.createSocket(clientCfg);
        if (connect) {
            client->connect(pipe.b().address(), 80);
            simulator.runUntil(2 * sim::kSecond);
        }
    }

    void run(sim::Time dt) { simulator.runUntil(simulator.now() + dt); }
    void cutWire() { pipe.config().lossAtoB = pipe.config().lossBtoA = 1.0; }

    /// Injects a crafted segment from the "server" side into the client.
    void inject(tcp::Segment seg) {
        seg.srcPort = 80;
        seg.dstPort = client->localPort();
        client->input(seg, ip6::Ecn::kNotCapable);
        run(10 * sim::kMillisecond);
    }
};

tcp::TcpConfig scriptedCfg() {
    tcp::TcpConfig cfg;
    cfg.mss = 100;
    cfg.sendBufferBytes = 800;
    cfg.recvBufferBytes = 800;
    cfg.timestamps = false;  // injected segments need no option bookkeeping
    cfg.sack = false;
    return cfg;
}

// --- WindowScale: codec properties ------------------------------------------

TEST(WindowScale, CodecRoundTripsAllShifts) {
    for (std::uint8_t shift = 0; shift <= tcp::kMaxWindowShift; ++shift) {
        const std::uint32_t grain = 1u << shift;
        tcp::Segment seg;
        // Exact multiples of the granularity round-trip losslessly up to
        // the 16-bit field's reach.
        for (std::uint32_t units : {0u, 1u, 37u, 65535u}) {
            const std::uint32_t bytes = units * grain;
            seg.setWindowBytes(bytes, shift);
            EXPECT_EQ(seg.windowBytes(shift), bytes) << "shift " << int(shift);
        }
        // Values past 65535 << shift clamp to the field's maximum.
        seg.setWindowBytes(0xffffffffu, shift);
        EXPECT_EQ(seg.window, 0xffffu);
        EXPECT_EQ(seg.windowBytes(shift), std::uint32_t(65535u) << shift);
        // Non-multiples floor to the granularity (never round up past the
        // real buffer space).
        if (shift > 0) {
            seg.setWindowBytes(grain + 1, shift);
            EXPECT_EQ(seg.windowBytes(shift), grain);
        }
    }
}

TEST(WindowScale, WireOptionSurvivesEncodeDecode) {
    for (std::uint8_t shift = 0; shift <= tcp::kMaxWindowShift; ++shift) {
        tcp::Segment seg;
        seg.srcPort = 1;
        seg.dstPort = 2;
        seg.flags.syn = true;
        seg.mssOption = 1220;
        seg.windowScale = shift;
        seg.setWindowBytes(4321, shift);
        const auto decoded = tcp::Segment::decode(seg.encode());
        ASSERT_TRUE(decoded.has_value());
        ASSERT_TRUE(decoded->windowScale.has_value());
        EXPECT_EQ(*decoded->windowScale, shift);
        EXPECT_EQ(decoded->window, 4321u);  // SYN window rides unscaled
    }
}

TEST(WindowScale, SynWindowFieldIsNeverScaled) {
    tcp::Segment seg;
    seg.flags.syn = true;
    seg.setWindowBytes(1u << 20, 10);
    EXPECT_EQ(seg.window, 0xffffu);             // raw clamp, no shift applied
    EXPECT_EQ(seg.windowBytes(10), 0xffffu);    // and reads ignore it too

    seg.flags.syn = false;
    seg.setWindowBytes(1u << 20, 10);
    EXPECT_EQ(seg.window, 1024u);
    EXPECT_EQ(seg.windowBytes(10), 1u << 20);
}

// --- WindowScale: handshake negotiation -------------------------------------

TEST(WindowScale, HandshakeNegotiatesIndependentShifts) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.windowScaling = true;
    clientCfg.recvBufferMaxBytes = 1u << 20;  // needs shift 5
    tcp::TcpConfig serverCfg = scriptedCfg();
    serverCfg.windowScaling = true;
    serverCfg.recvBufferBytes = 256 * 1024;   // needs shift 3

    WsPair p(clientCfg, serverCfg);
    ASSERT_EQ(p.client->state(), tcp::State::kEstablished);
    ASSERT_NE(p.server, nullptr);
    EXPECT_TRUE(p.client->tcb().wsEnabled);
    EXPECT_TRUE(p.server->tcb().wsEnabled);
    EXPECT_EQ(p.client->tcb().rcvWndShift, 5);
    EXPECT_EQ(p.server->tcb().sndWndShift, 5);
    EXPECT_EQ(p.server->tcb().rcvWndShift, 3);
    EXPECT_EQ(p.client->tcb().sndWndShift, 3);
}

TEST(WindowScale, NoScalingUnlessBothSidesOffer) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.windowScaling = true;
    clientCfg.recvBufferMaxBytes = 1u << 20;
    tcp::TcpConfig serverCfg = scriptedCfg();  // windowScaling defaults off

    WsPair p(clientCfg, serverCfg);
    ASSERT_EQ(p.client->state(), tcp::State::kEstablished);
    EXPECT_FALSE(p.client->tcb().wsEnabled);
    EXPECT_FALSE(p.server->tcb().wsEnabled);
    EXPECT_EQ(p.client->tcb().sndWndShift, 0);
    EXPECT_EQ(p.client->tcb().rcvWndShift, 0);
}

TEST(WindowScale, PeerShiftAboveFourteenIsClamped) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.windowScaling = true;
    clientCfg.recvBufferMaxBytes = 1u << 20;

    WsPair p(clientCfg, scriptedCfg(), /*connect=*/false);
    p.cutWire();  // the scripted SYN-ACK below is the only reply
    p.client->connect(p.pipe.b().address(), 80);
    p.run(50 * sim::kMillisecond);
    ASSERT_EQ(p.client->state(), tcp::State::kSynSent);

    tcp::Segment synack;
    synack.flags.syn = synack.flags.ack = true;
    synack.seq = 5000;
    synack.ack = p.client->tcb().iss + 1;
    synack.window = 1000;
    synack.mssOption = 100;
    synack.windowScale = 15;  // RFC 7323 §2.3: clamp, never reject
    p.inject(synack);

    ASSERT_EQ(p.client->state(), tcp::State::kEstablished);
    EXPECT_TRUE(p.client->tcb().wsEnabled);
    EXPECT_EQ(p.client->tcb().sndWndShift, tcp::kMaxWindowShift);
    EXPECT_EQ(p.client->tcb().sndWnd, 1000u);  // SYN-ACK window unscaled
}

// --- WindowScale: window-update hardening -----------------------------------

/// Rig for the update-ordering pins: established over a real wire, wire cut,
/// then crafted ACK segments drive updateWindow directly.
struct UpdateRig : WsPair {
    UpdateRig() : WsPair(scriptedCfg(), scriptedCfg()) {
        EXPECT_EQ(client->state(), tcp::State::kEstablished);
        cutWire();
        const Bytes data = patternBytes(0, 800);
        client->send(BytesView(data.data(), data.size()));
        run(10 * sim::kMillisecond);
    }

    void injectAck(tcp::Seq seq, tcp::Seq ack, std::uint16_t window) {
        tcp::Segment seg;
        seg.seq = seq;
        seg.ack = ack;
        seg.window = window;
        seg.flags.ack = true;
        inject(seg);
    }
};

TEST(WindowScale, StaleAckCannotRewriteSendWindow) {
    UpdateRig r;
    const tcp::Seq una0 = r.client->tcb().sndUna;
    const tcp::Seq rcv = r.client->tcb().rcvNxt;

    r.injectAck(rcv, una0 + 100, 300);
    EXPECT_EQ(r.client->tcb().sndWnd, 300u);

    // A reordered old segment (same seq, older ack — the SND.WL2 leg)
    // must not overwrite the fresher, smaller window.
    r.injectAck(rcv, una0, 20000);
    EXPECT_EQ(r.client->tcb().sndWnd, 300u);

    // Same seq with an equal-or-newer ack still updates (RFC 793's "=<").
    r.injectAck(rcv, una0 + 100, 600);
    EXPECT_EQ(r.client->tcb().sndWnd, 600u);
}

TEST(WindowScale, BogusFutureAckLeavesWindowStateUntouched) {
    UpdateRig r;
    const tcp::Seq una0 = r.client->tcb().sndUna;
    const tcp::Seq rcv = r.client->tcb().rcvNxt;

    r.injectAck(rcv, una0 + 100, 300);
    EXPECT_EQ(r.client->tcb().sndWnd, 300u);

    // Acks data never sent: draws a challenge ACK, and must leave both
    // sndWnd and the WL1/WL2 bookkeeping alone — were sndWl2 parked at the
    // bogus future ack, every legitimate update below would be rejected.
    r.injectAck(rcv, r.client->tcb().sndMax + 5000, 40);
    EXPECT_EQ(r.client->stats().challengeAcks, 1u);
    EXPECT_EQ(r.client->tcb().sndWnd, 300u);
    EXPECT_EQ(r.client->tcb().sndWl2, una0 + 100);

    r.injectAck(rcv, una0 + 200, 500);
    EXPECT_EQ(r.client->tcb().sndWnd, 500u);
}

// --- WindowScale: receiver-side SWS avoidance -------------------------------

TEST(WindowScale, TrickleReaderDoesNotOscillate) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.sendBufferBytes = 2000;
    tcp::TcpConfig serverCfg = scriptedCfg();  // capacity 800 -> threshold 100

    WsPair p(clientCfg, serverCfg);  // server stays in manual-read mode
    ASSERT_EQ(p.client->state(), tcp::State::kEstablished);
    ASSERT_NE(p.server, nullptr);

    const Bytes data = patternBytes(0, 2000);
    p.client->send(BytesView(data.data(), data.size()));
    p.run(10 * sim::kSecond);

    // Receiver full, sender window closed, persist mode engaged.
    EXPECT_EQ(p.server->readable(), 800u);
    EXPECT_EQ(p.client->tcb().sndWnd, 0u);
    const tcp::Seq una1 = p.client->tcb().sndUna;

    // Reading below min(MSS, capacity/2) = 100 must NOT reopen the window:
    // neither an immediate window update nor the persist-probe responses
    // may advertise the 50-byte sliver. Only probe bytes (1 per persist
    // fire) trickle through.
    EXPECT_FALSE(p.server->read(50).empty());
    p.run(12 * sim::kSecond);
    EXPECT_EQ(p.client->tcb().sndWnd, 0u);
    EXPECT_LE(std::uint32_t(p.client->tcb().sndUna - una1), 5u);

    // Crossing the threshold reopens the window and the stream moves again.
    EXPECT_FALSE(p.server->read(100).empty());
    p.run(3 * sim::kSecond);
    EXPECT_GE(std::uint32_t(p.client->tcb().sndUna - una1), 100u);
}

// --- Autotune ---------------------------------------------------------------

/// Streams `total` bytes client->server with the server auto-draining.
struct AutotunePair : WsPair {
    std::size_t remaining;

    AutotunePair(const tcp::TcpConfig& clientCfg, const tcp::TcpConfig& serverCfg,
                 std::size_t total)
        : WsPair(clientCfg, serverCfg, /*connect=*/false), remaining(total) {
        onAccept = [](tcp::TcpSocket& s) { s.setOnData([](BytesView) {}); };  // auto-drain
        client->setOnSendSpace([this] { push(); });
        client->connect(pipe.b().address(), 80);
        run(2 * sim::kSecond);
        EXPECT_EQ(client->state(), tcp::State::kEstablished);
        push();
        run(60 * sim::kSecond);
    }

    void push() {
        while (remaining > 0) {
            const std::size_t n = std::min(remaining, client->sendFree());
            if (n == 0) return;
            const Bytes chunk = patternBytes(0, n);
            remaining -= client->send(BytesView(chunk.data(), chunk.size()));
        }
    }
};

tcp::TcpConfig autotuneServerCfg(std::size_t budget) {
    tcp::TcpConfig cfg = scriptedCfg();
    cfg.recvBufferBytes = 400;
    cfg.recvBufferMaxBytes = budget;
    return cfg;
}

TEST(Autotune, GrowthStopsExactlyAtBudget) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.sendBufferBytes = 4000;
    AutotunePair p(clientCfg, autotuneServerCfg(1600), 20000);
    ASSERT_NE(p.server, nullptr);
    // 400 doubles toward the budget and pins there — never past it.
    EXPECT_EQ(p.server->recvBufferCapacity(), 1600u);
    EXPECT_GT(p.server->autotuneLastRtt(), 0u);
}

TEST(Autotune, NoBudgetMeansNoGrowth) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.sendBufferBytes = 4000;
    AutotunePair p(clientCfg, autotuneServerCfg(0), 20000);
    ASSERT_NE(p.server, nullptr);
    EXPECT_EQ(p.server->recvBufferCapacity(), 400u);
}

TEST(Autotune, BudgetAtOrBelowCapacityIsInert) {
    tcp::TcpConfig clientCfg = scriptedCfg();
    clientCfg.sendBufferBytes = 4000;
    AutotunePair p(clientCfg, autotuneServerCfg(300), 20000);
    ASSERT_NE(p.server, nullptr);
    EXPECT_EQ(p.server->recvBufferCapacity(), 400u);
}

TEST(Autotune, GrowPreservesInSequenceAndOutOfOrderData) {
    tcp::RecvBuffer rb(16);
    const Bytes head = toBytes("abcd");
    const Bytes ooo = toBytes("ij");
    const Bytes gap = toBytes("efgh");
    EXPECT_EQ(rb.insert(0, BytesView(head.data(), head.size())), 4u);
    // Offsets are relative to the advanced rcv_nxt: stream bytes 8..9.
    EXPECT_EQ(rb.insert(4, BytesView(ooo.data(), ooo.size())), 0u);

    rb.grow(32);
    EXPECT_EQ(rb.capacity(), 32u);
    EXPECT_EQ(rb.readable(), 4u);
    EXPECT_EQ(rb.window(), 28u);

    // Filling the gap commits through the out-of-order bytes that were
    // carried across the grow.
    EXPECT_EQ(rb.insert(0, BytesView(gap.data(), gap.size())), 6u);
    EXPECT_EQ(toPrintable(rb.read(10)), "abcdefghij");
}

// --- MacAgg -----------------------------------------------------------------

struct AggPair {
    sim::Simulator simulator{3};
    phy::Channel channel{simulator, 12.0};
    phy::Radio radioA{simulator, channel, 1, {0, 0}};
    phy::Radio radioB{simulator, channel, 2, {10, 0}};
    mac::CsmaMac macA;
    mac::CsmaMac macB;

    explicit AggPair(int aggFrames)
        : macA(radioA, withAgg(aggFrames)), macB(radioB, {}) {}

    static mac::CsmaConfig withAgg(int aggFrames) {
        mac::CsmaConfig cfg;
        cfg.aggFrames = aggFrames;
        return cfg;
    }
};

TEST(MacAgg, BurstAmortizesCsmaLadderAcrossQueuedFrames) {
    AggPair p(4);
    std::string got;
    p.macB.setReceiveCallback(
        [&](phy::NodeId, const PacketBuffer& payload) { got += toPrintable(payload.toBytes()); });
    p.macA.send(2, toBytes("a"));
    p.macA.send(2, toBytes("b"));
    p.macA.send(2, toBytes("c"));
    p.macA.send(2, toBytes("d"));
    p.simulator.run();
    EXPECT_EQ(got, "abcd");  // delivered, and in order
    // One CSMA ladder for the burst leader, three tailgating frames.
    EXPECT_EQ(p.macA.stats().aggregatedFrames, 3u);
}

TEST(MacAgg, StockConfigNeverAggregates) {
    AggPair p(1);
    int delivered = 0;
    p.macB.setReceiveCallback([&](phy::NodeId, const PacketBuffer&) { ++delivered; });
    p.macA.send(2, toBytes("a"));
    p.macA.send(2, toBytes("b"));
    p.macA.send(2, toBytes("c"));
    p.macA.send(2, toBytes("d"));
    p.simulator.run();
    EXPECT_EQ(delivered, 4);
    EXPECT_EQ(p.macA.stats().aggregatedFrames, 0u);
}

TEST(MacAgg, BurstLongerThanConfigStartsFreshLadder) {
    AggPair p(2);  // bursts of at most 2: leader + one tailgater
    int delivered = 0;
    p.macB.setReceiveCallback([&](phy::NodeId, const PacketBuffer&) { ++delivered; });
    for (int i = 0; i < 6; ++i) p.macA.send(2, patternBytes(std::size_t(i), 20));
    p.simulator.run();
    EXPECT_EQ(delivered, 6);
    EXPECT_EQ(p.macA.stats().aggregatedFrames, 3u);  // one tailgater per pair
}

}  // namespace
