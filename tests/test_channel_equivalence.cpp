// Spatial-index equivalence: the grid-indexed channel must be externally
// indistinguishable from the frozen linear-scan reference — identical
// delivery sets, identical collision/fading counts, and an identical RNG
// draw sequence (so every figure bench replays byte-for-byte). Topologies
// are randomized; traffic is dense enough to exercise hidden-terminal
// collisions and same-tick batched deliveries.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::phy;

namespace {

struct DeliveryRecord {
    NodeId receiver;
    NodeId src;
    std::uint8_t seq;
    sim::Time at;
    bool operator==(const DeliveryRecord& o) const {
        return receiver == o.receiver && src == o.src && seq == o.seq && at == o.at;
    }
};

struct Outcome {
    std::vector<DeliveryRecord> deliveries;
    std::uint64_t transmitted = 0;
    std::uint64_t collided = 0;
    std::uint64_t faded = 0;
    std::uint64_t rngDigest = 0;
};

/// One simulated world: `n` radios at topology-RNG-chosen positions, every
/// radio periodically transmitting (directly onto the medium, so the
/// workload is identical in both modes and all randomness flows through the
/// channel's loss draws).
Outcome runWorld(Channel::DeliveryMode mode, std::uint64_t seed, std::size_t n,
                 double area, double loss) {
    sim::Simulator simulator(seed);
    Channel channel(simulator, 12.0);
    channel.setDeliveryMode(mode);
    channel.setDefaultLoss(loss);
    channel.setAmbientLoss([](sim::Time now, NodeId dst) {
        return ((now / 1000) % 7 == dst % 7) ? 0.5 : 0.0;
    });

    // Positions from a dedicated RNG so both modes build the same topology
    // without touching the simulation RNG.
    sim::Rng topo(seed * 1315423911ULL + 17);
    std::vector<std::unique_ptr<Radio>> radios;
    Outcome out;
    for (std::size_t i = 0; i < n; ++i) {
        const Position pos{double(topo.uniformInt(std::uint64_t(area * 100))) / 100.0,
                           double(topo.uniformInt(std::uint64_t(area * 100))) / 100.0};
        radios.push_back(
            std::make_unique<Radio>(simulator, channel, NodeId(i + 1), pos));
        Radio* r = radios.back().get();
        r->setAutoAck(false);
        r->setReceiveCallback([&out, r](const Frame& f) {
            out.deliveries.push_back(DeliveryRecord{r->id(), f.src, f.seq, r->simulator().now()});
        });
    }

    // Dense periodic broadcast traffic. Staggered but overlapping: stretches
    // of equal frame sizes make same-tick endings (batched deliveries)
    // common, and close transmitters exercise collisions.
    for (std::size_t i = 0; i < n; ++i) {
        const sim::Time start = sim::Time(137 * (i % 11));
        const std::size_t len = 20 + (i % 3) * 40;
        for (int burst = 0; burst < 6; ++burst) {
            simulator.schedule(start + sim::Time(burst) * 9000, [&, i, len, burst] {
                Frame f;
                f.src = radios[i]->id();
                f.dst = kBroadcast;
                f.seq = std::uint8_t(burst);
                f.payload = patternBytes(i, len);
                channel.startTransmission(radios[i].get(), f);
            });
        }
    }

    simulator.run();
    out.transmitted = channel.framesTransmitted();
    out.collided = channel.framesCollided();
    out.faded = channel.framesLostToFading();
    out.rngDigest = simulator.rng().stateDigest();
    return out;
}

}  // namespace

TEST(ChannelEquivalence, DenseRandomTopologiesMatchLinearReference) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL, 99ULL}) {
        for (const std::size_t n : {15ULL, 40ULL, 80ULL}) {
            const Outcome indexed =
                runWorld(Channel::DeliveryMode::kSpatialIndex, seed, n, 60.0, 0.05);
            const Outcome linear =
                runWorld(Channel::DeliveryMode::kLinearScan, seed, n, 60.0, 0.05);
            ASSERT_EQ(indexed.transmitted, linear.transmitted) << "seed " << seed;
            EXPECT_EQ(indexed.collided, linear.collided) << "seed " << seed << " n " << n;
            EXPECT_EQ(indexed.faded, linear.faded) << "seed " << seed << " n " << n;
            ASSERT_EQ(indexed.deliveries.size(), linear.deliveries.size())
                << "seed " << seed << " n " << n;
            for (std::size_t i = 0; i < indexed.deliveries.size(); ++i) {
                ASSERT_TRUE(indexed.deliveries[i] == linear.deliveries[i])
                    << "delivery " << i << " differs at seed " << seed << " n " << n;
            }
            // Same final RNG state == the loss draws happened in the same
            // order for the same listeners (one draw per in-range listener).
            EXPECT_EQ(indexed.rngDigest, linear.rngDigest) << "seed " << seed << " n " << n;
        }
    }
}

TEST(ChannelEquivalence, SpatialModeDoesFarLessWork) {
    const std::size_t n = 80;
    const auto visits = [&](Channel::DeliveryMode mode) {
        sim::Simulator simulator(5);
        Channel channel(simulator, 12.0);
        channel.setDeliveryMode(mode);
        sim::Rng topo(42);
        std::vector<std::unique_ptr<Radio>> radios;
        for (std::size_t i = 0; i < n; ++i) {
            radios.push_back(std::make_unique<Radio>(
                simulator, channel, NodeId(i + 1),
                Position{double(topo.uniformInt(8000)) / 100.0,
                         double(topo.uniformInt(8000)) / 100.0}));
        }
        Frame f;
        f.dst = kBroadcast;
        f.payload = patternBytes(1, 30);
        for (std::size_t i = 0; i < n; ++i) {
            f.src = radios[i]->id();
            simulator.schedule(sim::Time(i) * 7001, [&, i, f] {
                channel.startTransmission(radios[i].get(), f);
            });
        }
        simulator.run();
        return channel.channelStats().listenerVisits;
    };
    const std::uint64_t indexed = visits(Channel::DeliveryMode::kSpatialIndex);
    const std::uint64_t linear = visits(Channel::DeliveryMode::kLinearScan);
    // 80 radios spread over an 80x80 m area with 12 m cells: the 3x3
    // neighborhood holds a small fraction of the network.
    EXPECT_LT(indexed * 4, linear);
}

TEST(ChannelEquivalence, MovedRadioIsReindexed) {
    sim::Simulator simulator;
    Channel channel(simulator, 12.0);
    Radio a(simulator, channel, 1, {0, 0});
    Radio b(simulator, channel, 2, {100, 100});  // far outside a's neighborhood

    int got = 0;
    b.setReceiveCallback([&](const Frame&) { ++got; });

    Frame f;
    f.src = 1;
    f.dst = kBroadcast;
    f.payload = toBytes("x");
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(got, 0);

    b.setPosition({10, 0});  // walks into range; the grid must re-file it
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(got, 1);

    b.setPosition({100, 100});  // walks away again
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(got, 1);
}

// Regression for the retired (transmitter, end-time) erase: transmissions
// are keyed by txId, so two frames from ONE transmitter whose carriers drop
// at the same tick retire independently and both deliver. (The old linear
// erase matched the first entry with that transmitter+end pair.)
TEST(ChannelRegression, SameTransmitterSameEndTickRetiresBoth) {
    sim::Simulator simulator;
    Channel channel(simulator, 12.0);
    // Pin the batched path: this test exercises its txId bookkeeping, and
    // the kAuto default resolves to the linear scan at this radio count.
    channel.setDeliveryMode(Channel::DeliveryMode::kSpatialIndex);
    Radio tx(simulator, channel, 1, {0, 0});
    Radio rx(simulator, channel, 2, {10, 0});

    Frame f1;
    f1.src = 1;
    f1.dst = kBroadcast;
    f1.seq = 10;
    f1.payload = patternBytes(0, 24);
    Frame f2 = f1;
    f2.seq = 11;

    // Drive the medium directly: same instant, same air time -> same end
    // tick, one transmitter. (The radio state machine cannot produce this,
    // which is exactly why the bookkeeping must not rely on it.)
    channel.startTransmission(&tx, f1);
    channel.startTransmission(&tx, f2);
    EXPECT_EQ(channel.activeTransmissionCount(), 2u);
    EXPECT_FALSE(channel.clearAt(&rx));

    simulator.run();
    // Both entries retired — nothing leaks in the active list, and the
    // overlapping carriers were observed as a collision at the receiver.
    EXPECT_EQ(channel.activeTransmissionCount(), 0u);
    EXPECT_TRUE(channel.clearAt(&rx));
    EXPECT_EQ(channel.framesTransmitted(), 2u);
    EXPECT_EQ(channel.framesCollided(), 1u);
    // The pair shared one pooled delivery event (batched by end tick).
    EXPECT_EQ(channel.channelStats().deliveryEvents, 1u);
}

TEST(ChannelRegression, BackToBackFramesStaggeredEndsRetireInOrder) {
    sim::Simulator simulator;
    Channel channel(simulator, 12.0);
    Radio tx(simulator, channel, 1, {0, 0});
    Radio rx(simulator, channel, 2, {10, 0});

    Frame shortFrame;
    shortFrame.src = 1;
    shortFrame.dst = kBroadcast;
    shortFrame.payload = patternBytes(0, 8);
    Frame longFrame = shortFrame;
    longFrame.payload = patternBytes(0, 80);

    channel.startTransmission(&tx, longFrame);
    channel.startTransmission(&tx, shortFrame);
    EXPECT_EQ(channel.activeTransmissionCount(), 2u);

    simulator.runUntil(shortFrame.airTime());
    // The short frame's entry (started second) retired first — the txId
    // keying picked the right one even though transmitter+start matched.
    EXPECT_EQ(channel.activeTransmissionCount(), 1u);
    EXPECT_FALSE(channel.clearAt(&rx));

    simulator.run();
    EXPECT_EQ(channel.activeTransmissionCount(), 0u);
    EXPECT_TRUE(channel.clearAt(&rx));
}
