// Unit tests: CoAP message codec, confirmable retransmission machinery,
// CoCoA estimators, and the §9.4 weak-estimator pathology.
#include <gtest/gtest.h>

#include "tcplp/coap/coap.hpp"
#include "tcplp/harness/pipe.hpp"

using namespace tcplp;
using namespace tcplp::coap;

TEST(CoapCodec, RoundTripConfirmablePost) {
    Message m;
    m.type = Type::kConfirmable;
    m.code = kCodePost;
    m.messageId = 0xbeef;
    m.token = 0x12345678;
    m.block1 = Block{42, true, 5};
    m.payload = patternBytes(0, 80);

    const auto d = Message::decode(m.encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->type, Type::kConfirmable);
    EXPECT_EQ(d->code, kCodePost);
    EXPECT_EQ(d->messageId, 0xbeef);
    EXPECT_EQ(d->token, 0x12345678u);
    ASSERT_TRUE(d->block1);
    EXPECT_EQ(d->block1->num, 42u);
    EXPECT_TRUE(d->block1->more);
    EXPECT_EQ(d->block1->szx, 5);
    EXPECT_EQ(d->payload, m.payload);
}

TEST(CoapCodec, EmptyAckRoundTrip) {
    Message ack;
    ack.type = Type::kAck;
    ack.code = kCodeChanged;
    ack.messageId = 7;
    ack.tokenLength = 0;
    ack.token = 0;
    const auto d = Message::decode(ack.encode());
    ASSERT_TRUE(d);
    EXPECT_EQ(d->type, Type::kAck);
    EXPECT_EQ(d->messageId, 7);
    EXPECT_TRUE(d->payload.empty());
}

TEST(CoapCodec, LargeBlockNumberEncodes) {
    Message m;
    m.block1 = Block{100000, false, 6};
    const auto d = Message::decode(m.encode());
    ASSERT_TRUE(d && d->block1);
    EXPECT_EQ(d->block1->num, 100000u);
}

TEST(CoapCodec, RejectsGarbage) {
    EXPECT_FALSE(Message::decode(toBytes("zz")).has_value());
    Bytes bad = {0xff, 0xff, 0xff, 0xff};
    EXPECT_FALSE(Message::decode(bad).has_value());
}

namespace {
struct CoapPair {
    sim::Simulator simulator;
    harness::Pipe pipe;
    transport::UdpStack clientUdp;
    transport::UdpStack serverUdp;
    CoapServer server;
    CoapClient client;

    explicit CoapPair(harness::Pipe::Config pc = {}, CoapConfig cc = {},
                      std::uint64_t seed = 5)
        : simulator(seed),
          pipe(simulator, pc),
          clientUdp(pipe.a()),
          serverUdp(pipe.b()),
          server(serverUdp, 5683),
          client(clientUdp, pipe.b().address(), 5683, cc) {}
};
}  // namespace

TEST(CoapExchange, ConfirmableDeliveredAndAcked) {
    CoapPair t;
    bool done = false, ok = false;
    t.client.postConfirmable(toBytes("reading"), [&](bool d) {
        done = true;
        ok = d;
    });
    t.simulator.runUntil(10 * sim::kSecond);
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_EQ(t.server.requestsReceived(), 1u);
    EXPECT_EQ(t.client.stats().retransmissions, 0u);
}

TEST(CoapExchange, RetransmitsOnLossThenSucceeds) {
    harness::Pipe::Config pc;
    pc.lossAtoB = 0.4;
    CoapPair t(pc, {}, 11);
    int delivered = 0;
    for (int i = 0; i < 10; ++i)
        t.client.postConfirmable(patternBytes(std::size_t(i), 40),
                                 [&](bool d) { delivered += d; });
    t.simulator.runUntil(10 * sim::kMinute);
    // Per-exchange failure probability is 0.4^5 = 1%; allow one unlucky one.
    EXPECT_GE(delivered, 9);
    EXPECT_GT(t.client.stats().retransmissions, 0u);
}

TEST(CoapExchange, GivesUpAfterMaxRetransmit) {
    harness::Pipe::Config pc;
    pc.lossAtoB = 1.0;
    CoapPair t(pc);
    bool done = false, ok = true;
    t.client.postConfirmable(toBytes("doomed"), [&](bool d) {
        done = true;
        ok = d;
    });
    t.simulator.runUntil(10 * sim::kMinute);
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
    // RFC 7252: MAX_RETRANSMIT = 4 retransmissions after the first try.
    EXPECT_EQ(t.client.stats().retransmissions, 4u);
    EXPECT_EQ(t.client.stats().exchangesFailed, 1u);
}

TEST(CoapExchange, Nstart1SerializesExchanges) {
    CoapPair t;
    std::vector<int> completionOrder;
    for (int i = 0; i < 5; ++i)
        t.client.postConfirmable(patternBytes(std::size_t(i), 20),
                                 [&completionOrder, i](bool) { completionOrder.push_back(i); });
    EXPECT_EQ(t.client.pendingExchanges(), 5u);
    t.simulator.runUntil(1 * sim::kMinute);
    EXPECT_EQ(completionOrder, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CoapExchange, DuplicateRequestsSuppressedAtServer) {
    // Lose ACKs so the client retransmits; the server must count one.
    harness::Pipe::Config pc;
    pc.lossBtoA = 0.7;
    CoapPair t(pc, {}, 23);
    t.client.postConfirmable(toBytes("once"), nullptr);
    t.simulator.runUntil(5 * sim::kMinute);
    EXPECT_EQ(t.server.requestsReceived(), 1u);
    EXPECT_GE(t.server.duplicatesSuppressed(), 1u);
}

TEST(CoapExchange, NonConfirmableHasNoRetransmissions) {
    harness::Pipe::Config pc;
    pc.lossAtoB = 0.5;
    CoapPair t(pc);
    for (int i = 0; i < 20; ++i) t.client.postNonConfirmable(patternBytes(std::size_t(i), 30));
    t.simulator.runUntil(1 * sim::kMinute);
    EXPECT_EQ(t.client.stats().retransmissions, 0u);
    EXPECT_LT(t.server.requestsReceived(), 20u);  // some lost, none recovered
    EXPECT_GT(t.server.requestsReceived(), 0u);
}

TEST(Cocoa, StrongSamplesTrackTrueRtt) {
    CocoaEstimator est(2 * sim::kSecond);
    for (int i = 0; i < 50; ++i) est.strongSample(200 * sim::kMillisecond);
    // Converges toward srtt + 4*rttvar of a 200 ms RTT: well under 2 s.
    EXPECT_LT(est.rto(), 1 * sim::kSecond);
    EXPECT_GT(est.rto(), 150 * sim::kMillisecond);
}

TEST(Cocoa, WeakSamplesInflateRto) {
    // §9.4: the weak estimator measures from the FIRST transmission, so a
    // retransmitted exchange contributes RTT + RTO worth of delay,
    // inflating the overall RTO.
    CocoaEstimator clean(2 * sim::kSecond);
    CocoaEstimator lossy(2 * sim::kSecond);
    for (int i = 0; i < 20; ++i) {
        clean.strongSample(200 * sim::kMillisecond);
        lossy.weakSample(2200 * sim::kMillisecond);  // first-tx-relative
    }
    EXPECT_GT(lossy.rto(), clean.rto() * 2);
}

TEST(Cocoa, VariableBackoffBands) {
    EXPECT_EQ(CocoaEstimator::backoff(500 * sim::kMillisecond), 1500 * sim::kMillisecond);
    EXPECT_EQ(CocoaEstimator::backoff(2 * sim::kSecond), 4 * sim::kSecond);
    EXPECT_EQ(CocoaEstimator::backoff(4 * sim::kSecond), 6 * sim::kSecond);
}

TEST(Cocoa, RecoversFasterThanPlainCoapAfterIdlePath) {
    // CoCoA's learned RTO on a clean path is far below CoAP's fixed 2 s, so
    // a lost packet is retried much sooner.
    harness::Pipe::Config pc;
    pc.oneWayDelay = 50 * sim::kMillisecond;
    CoapConfig cocoaCfg;
    cocoaCfg.cocoa = true;
    CoapPair t(pc, cocoaCfg);
    int done = 0;
    for (int i = 0; i < 30; ++i)
        t.client.postConfirmable(patternBytes(std::size_t(i), 20), [&](bool) { ++done; });
    t.simulator.runUntil(2 * sim::kMinute);
    EXPECT_EQ(done, 30);
    EXPECT_LT(t.client.currentRto(), 1 * sim::kSecond);
}

TEST(Udp, DatagramRoundTrip) {
    sim::Simulator simulator;
    harness::Pipe pipe(simulator);
    transport::UdpStack a(pipe.a());
    transport::UdpStack b(pipe.b());
    Bytes got;
    ip6::Address from{};
    b.bind(9999, [&](const transport::UdpDatagram& d) {
        got = d.payload;
        from = d.srcAddr;
    });
    a.sendTo(pipe.b().address(), 9999, 1234, toBytes("ping"));
    simulator.run();
    EXPECT_EQ(toPrintable(got), "ping");
    EXPECT_EQ(from, pipe.a().address());
}
