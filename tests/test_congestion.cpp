// Pluggable congestion control (tcp/congestion.hpp).
//
// Three layers of coverage:
//
//  1. Direct-hook tests: each strategy driven on a bare Tcb with scripted
//     hook sequences — NewReno's window arithmetic, CERL's noise-vs-queue
//     loss classification, Westwood's bandwidth-estimate cut.
//
//  2. Scripted-ACK socket tests: a real TcpSocket over a pipe whose wire is
//     cut after the handshake, fed hand-crafted ACK segments through
//     input(). Pins the socket->strategy integration at every historical
//     mutation site (slow start, 3-dupack recovery entry, partial-ACK
//     deflation, RTO collapse) and the cwndCapBytes clamp.
//
//  3. NewReno equivalence: the strategy extraction replays the pre-refactor
//     engine byte-for-byte. The constants below were captured from the
//     engine as it stood BEFORE the CongestionControl refactor (same
//     scenario specs, same seeds); Rng::stateDigest equality proves the
//     refactored socket consumes the identical RNG stream.
#include <gtest/gtest.h>

#include <algorithm>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/tcp/congestion.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;
using namespace tcplp::tcp;

namespace {

// --- 1. Direct-hook strategy tests -----------------------------------------

/// A bare Tcb mid-connection: mss 500, 4000 bytes in flight.
Tcb flightTcb() {
    Tcb tcb;
    tcb.mss = 500;
    tcb.sndUna = 1000;
    tcb.sndNxt = 5000;
    tcb.sndMax = 5000;
    return tcb;
}

constexpr CcEnv kWideEnv{kMaxWindow, 2};

TEST(CongestionControl, FactoryBuildsEveryKindWithMatchingName) {
    Tcb tcb = flightTcb();
    for (CcKind kind : {CcKind::kNewReno, CcKind::kCerl, CcKind::kWestwood}) {
        auto cc = makeCongestionControl(kind, tcb, kWideEnv);
        ASSERT_NE(cc, nullptr);
        EXPECT_EQ(cc->kind(), kind);
        EXPECT_STREQ(cc->name(), ccName(kind));
    }
}

TEST(CongestionControl, OpenSetsInitialWindowAndClearsSsthresh) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, kWideEnv);
    cc->onOpen();
    EXPECT_EQ(tcb.cwnd, 1000u);  // 2 segments
    EXPECT_EQ(tcb.ssthresh, kMaxWindow);
    cc->onIdleRestart();
    EXPECT_EQ(tcb.cwnd, 1000u);
}

TEST(CongestionControl, NewRenoSlowStartAndCongestionAvoidance) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, kWideEnv);
    cc->onOpen();
    // Slow start: +min(acked, mss) per ACK.
    cc->onAck(0, 500);
    EXPECT_EQ(tcb.cwnd, 1500u);
    cc->onAck(0, 2000);  // a stretch ACK still adds at most one MSS
    EXPECT_EQ(tcb.cwnd, 2000u);
    // Congestion avoidance: +mss^2/cwnd per ACK.
    tcb.ssthresh = 1000;
    cc->onAck(0, 500);
    EXPECT_EQ(tcb.cwnd, 2000u + 500u * 500u / 2000u);
}

TEST(CongestionControl, NewRenoRecoveryEntryPartialAckAndExit) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;

    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 2000u);  // flight/2
    EXPECT_EQ(tcb.cwnd, 2000u + 3 * 500u);
    EXPECT_TRUE(tcb.inFastRecovery);
    EXPECT_EQ(tcb.recover, tcb.sndMax);
    EXPECT_EQ(cc->stats().lossCuts, 1u);
    EXPECT_EQ(cc->stats().cutsSkipped, 0u);

    cc->onDupAckInflate();
    EXPECT_EQ(tcb.cwnd, 4000u);

    // Partial ACK of 800 bytes: deflate by 800, re-inflate by one MSS.
    cc->onPartialAck(0, 800);
    EXPECT_EQ(tcb.cwnd, 4000u - 800u + 500u);

    cc->onExitRecovery(0);
    EXPECT_EQ(tcb.cwnd, tcb.ssthresh);
    EXPECT_FALSE(tcb.inFastRecovery);
    EXPECT_EQ(tcb.dupAcks, 0u);
}

TEST(CongestionControl, NewRenoRtoCollapsesToOneSegment) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    tcb.inFastRecovery = true;
    tcb.dupAcks = 3;
    cc->onRtoFire(0);
    EXPECT_EQ(tcb.ssthresh, 2000u);  // flight/2
    EXPECT_EQ(tcb.cwnd, 500u);       // one segment
    EXPECT_FALSE(tcb.inFastRecovery);
    EXPECT_EQ(tcb.dupAcks, 0u);
    EXPECT_EQ(cc->stats().lossCuts, 1u);
}

TEST(CongestionControl, NewRenoCutFloorsAtTwoSegments) {
    Tcb tcb = flightTcb();
    tcb.sndNxt = tcb.sndMax = tcb.sndUna + 600;  // tiny flight
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, kWideEnv);
    cc->onOpen();
    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 1000u);  // 2*mss floor, not 300
}

TEST(CongestionControl, SetCwndClampsToTheEnvCap) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kNewReno, tcb, CcEnv{1200, 2});
    cc->onOpen();
    EXPECT_EQ(tcb.cwnd, 1000u);
    cc->onAck(0, 500);  // slow start wants 1500; cap holds at 1200
    EXPECT_EQ(tcb.cwnd, 1200u);
    cc->onDupAckInflate();
    EXPECT_EQ(tcb.cwnd, 1200u);
}

TEST(CongestionControl, CerlWithNoRttSignalTakesTheStockCut) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kCerl, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 2000u);  // flight/2: assume congestion
    EXPECT_EQ(cc->stats().lossCuts, 1u);
    EXPECT_EQ(cc->stats().cutsSkipped, 0u);
}

TEST(CongestionControl, CerlSkipsTheCutWhenRttSitsAtTheFloor) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kCerl, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    // RTT barely above baseRTT: queue is empty, the loss is link noise.
    cc->onRttSample(100 * sim::kMillisecond);
    cc->onRttSample(102 * sim::kMillisecond);
    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 4000u);  // held at the operating point
    EXPECT_EQ(tcb.cwnd, 4000u + 3 * 500u);
    EXPECT_TRUE(tcb.inFastRecovery);
    EXPECT_EQ(cc->stats().lossCuts, 0u);
    EXPECT_EQ(cc->stats().cutsSkipped, 1u);
}

TEST(CongestionControl, CerlCutsWhenTheQueueIsStanding) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kCerl, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    // RTT at 2x baseRTT: half the flight (2000 B > 1.5 segments) is queued.
    cc->onRttSample(100 * sim::kMillisecond);
    cc->onRttSample(200 * sim::kMillisecond);
    EXPECT_EQ(cc->stats().cutsSkipped, 0u);
    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 2000u);  // stock NewReno cut
    EXPECT_EQ(cc->stats().lossCuts, 1u);
    EXPECT_EQ(cc->stats().cutsSkipped, 0u);
}

TEST(CongestionControl, CerlNoiseRtoCollapsesCwndButKeepsSsthresh) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kCerl, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    cc->onRttSample(100 * sim::kMillisecond);
    cc->onRttSample(101 * sim::kMillisecond);
    cc->onRtoFire(0);
    // The rewind to one segment is protocol-mandated, but ssthresh holds the
    // prior operating point so slow start regrows in one RTT.
    EXPECT_EQ(tcb.cwnd, 500u);
    EXPECT_EQ(tcb.ssthresh, 4000u);
    EXPECT_EQ(cc->stats().cutsSkipped, 1u);
    // CerlCc tracks the propagation floor, not the latest sample.
    auto* cerl = static_cast<CerlCc*>(cc.get());
    EXPECT_EQ(cerl->baseRtt(), 100 * sim::kMillisecond);
}

TEST(CongestionControl, WestwoodWithNoEstimateTakesTheStockCut) {
    Tcb tcb = flightTcb();
    auto cc = makeCongestionControl(CcKind::kWestwood, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    cc->onEnterRecovery(0);
    EXPECT_EQ(tcb.ssthresh, 2000u);  // flight/2 fallback
    EXPECT_EQ(cc->stats().lossCuts, 1u);
}

TEST(CongestionControl, WestwoodSetsSsthreshFromBandwidthTimesRttMin) {
    Tcb tcb = flightTcb();
    tcb.srtt = 100 * sim::kMillisecond;
    auto cc = makeCongestionControl(CcKind::kWestwood, tcb, kWideEnv);
    cc->onOpen();
    tcb.cwnd = 4000;
    auto* ww = static_cast<WestwoodCc*>(cc.get());

    cc->onRttSample(100 * sim::kMillisecond);
    EXPECT_EQ(ww->rttMin(), 100 * sim::kMillisecond);

    // 10000 bytes acked over 200 ms -> first BWE sample of 50 kB/s.
    cc->onAck(100 * sim::kMillisecond, 5000);
    EXPECT_DOUBLE_EQ(ww->bandwidthEstimate(), 0.0);  // interval still open
    cc->onAck(300 * sim::kMillisecond, 5000);
    EXPECT_DOUBLE_EQ(ww->bandwidthEstimate(), 50000.0);

    // A slower interval folds in via the 7/8 EWMA.
    cc->onAck(500 * sim::kMillisecond, 4000);
    EXPECT_DOUBLE_EQ(ww->bandwidthEstimate(), 0.875 * 50000.0 + 0.125 * 20000.0);

    // Loss: ssthresh = BWE x RTTmin, not flight/2.
    tcb.cwnd = 4000;
    cc->onEnterRecovery(500 * sim::kMillisecond);
    const auto pipe = std::uint32_t(ww->bandwidthEstimate() * 0.1);
    EXPECT_EQ(tcb.ssthresh, pipe);
    EXPECT_EQ(cc->stats().lossCuts, 1u);

    // RTO with an estimate: same threshold, window collapsed.
    tcb.cwnd = 4000;
    cc->onRtoFire(600 * sim::kMillisecond);
    EXPECT_EQ(tcb.ssthresh, pipe);
    EXPECT_EQ(tcb.cwnd, 500u);
}

// --- 2. Scripted-ACK socket tests ------------------------------------------

/// A client socket connected over a real pipe; after the handshake the wire
/// is cut (100% loss both ways) and the test injects crafted ACKs directly
/// through input(). Timestamps/SACK are disabled so injected segments need
/// no option bookkeeping.
struct ScriptedSocket {
    sim::Simulator simulator{7};
    harness::Pipe pipe;
    tcp::TcpStack clientStack;
    tcp::TcpStack serverStack;
    tcp::TcpSocket* client = nullptr;

    explicit ScriptedSocket(tcp::TcpConfig cfg) : pipe(simulator), clientStack(pipe.a()),
                                                  serverStack(pipe.b()) {
        tcp::TcpConfig serverCfg;
        serverCfg.mss = cfg.mss;
        serverCfg.sendBufferBytes = serverCfg.recvBufferBytes = 65535;
        serverStack.listen(80, serverCfg, [](tcp::TcpSocket&) {});
        client = &clientStack.createSocket(cfg);
        client->connect(pipe.b().address(), 80);
        simulator.runUntil(2 * sim::kSecond);
        EXPECT_EQ(client->state(), tcp::State::kEstablished);
        pipe.config().lossAtoB = pipe.config().lossBtoA = 1.0;  // cut the wire
    }

    static tcp::TcpConfig scriptedConfig() {
        tcp::TcpConfig cfg;
        cfg.mss = 100;
        cfg.sendBufferBytes = 800;
        cfg.recvBufferBytes = 800;
        cfg.timestamps = false;
        cfg.sack = false;
        return cfg;
    }

    /// Queues `bytes` of payload and lets the socket emit into the cut wire.
    void queue(std::size_t bytes) {
        const Bytes data = patternBytes(0, bytes);
        client->send(BytesView(data.data(), data.size()));
        pump();
    }

    void pump() { simulator.runUntil(simulator.now() + 10 * sim::kMillisecond); }

    /// Injects a bare ACK for `ack` (window held wide open).
    void injectAck(tcp::Seq ack) {
        tcp::Segment seg;
        seg.srcPort = 80;
        seg.dstPort = client->localPort();
        seg.seq = client->tcb().rcvNxt;
        seg.ack = ack;
        seg.window = 65535;
        seg.flags.ack = true;
        client->input(seg, ip6::Ecn::kNotCapable);
        pump();
    }

    std::uint32_t flight() const { return client->flightSize(); }
    const tcp::Tcb& tcb() const { return client->tcb(); }
};

TEST(CongestionControl, SocketSlowStartGrowsOneMssPerAck) {
    ScriptedSocket s(ScriptedSocket::scriptedConfig());
    EXPECT_EQ(s.tcb().cwnd, 200u);  // 2 x mss initial window
    s.queue(800);
    EXPECT_EQ(s.flight(), 200u);  // cwnd-limited
    s.injectAck(s.tcb().sndUna + 100);
    EXPECT_EQ(s.tcb().cwnd, 300u);
    s.injectAck(s.tcb().sndUna + 100);
    EXPECT_EQ(s.tcb().cwnd, 400u);
    // A stretch ACK covering two segments still adds at most one MSS.
    s.injectAck(s.tcb().sndUna + 200);
    EXPECT_EQ(s.tcb().cwnd, 500u);
}

TEST(CongestionControl, SocketThreeDupAcksEnterRecoveryWithHalvedSsthresh) {
    ScriptedSocket s(ScriptedSocket::scriptedConfig());
    s.queue(800);
    // Grow the window so the flight is worth halving.
    s.injectAck(s.tcb().sndUna + 100);
    s.injectAck(s.tcb().sndUna + 100);
    s.injectAck(s.tcb().sndUna + 100);
    const std::uint32_t flight = s.flight();
    ASSERT_GE(flight, 400u);
    const tcp::Seq una = s.tcb().sndUna;
    s.injectAck(una);
    s.injectAck(una);
    EXPECT_FALSE(s.tcb().inFastRecovery);
    s.injectAck(una);  // third duplicate
    EXPECT_TRUE(s.tcb().inFastRecovery);
    EXPECT_EQ(s.tcb().ssthresh, std::max(flight / 2, 200u));
    EXPECT_EQ(s.tcb().cwnd, s.tcb().ssthresh + 300u);
    EXPECT_EQ(s.client->ccStats().lossCuts, 1u);
    EXPECT_EQ(s.client->stats().fastRetransmissions, 1u);
}

TEST(CongestionControl, SocketPartialAckDeflatesThenExitRestoresSsthresh) {
    ScriptedSocket s(ScriptedSocket::scriptedConfig());
    s.queue(800);
    s.injectAck(s.tcb().sndUna + 100);
    s.injectAck(s.tcb().sndUna + 100);
    s.injectAck(s.tcb().sndUna + 100);
    const tcp::Seq una = s.tcb().sndUna;
    s.injectAck(una);
    s.injectAck(una);
    s.injectAck(una);
    ASSERT_TRUE(s.tcb().inFastRecovery);
    const tcp::Seq recover = s.tcb().recover;
    const std::uint32_t ssthresh = s.tcb().ssthresh;
    const std::uint32_t inflated = s.tcb().cwnd;

    // Partial ACK: two segments acked, still short of the recovery point.
    ASSERT_TRUE(seqGt(recover, una + 200));
    s.injectAck(una + 200);
    EXPECT_TRUE(s.tcb().inFastRecovery);
    EXPECT_EQ(s.tcb().cwnd, inflated - 200u + 100u);

    // ACK covering the recovery point: deflate to ssthresh and exit.
    s.injectAck(recover);
    EXPECT_FALSE(s.tcb().inFastRecovery);
    EXPECT_EQ(s.tcb().cwnd, ssthresh);
    EXPECT_EQ(s.tcb().dupAcks, 0u);
}

TEST(CongestionControl, SocketRtoCollapsesWindowToOneSegment) {
    ScriptedSocket s(ScriptedSocket::scriptedConfig());
    s.queue(800);
    s.injectAck(s.tcb().sndUna + 100);
    const std::uint32_t flight = s.flight();
    ASSERT_GT(flight, 0u);
    s.simulator.runUntil(s.simulator.now() + 5 * sim::kSecond);
    EXPECT_GE(s.client->stats().timeouts, 1u);
    EXPECT_EQ(s.tcb().cwnd, 100u);  // one segment
    EXPECT_EQ(s.tcb().ssthresh, std::max(flight / 2, 200u));
    EXPECT_FALSE(s.tcb().inFastRecovery);
}

TEST(CongestionControl, SocketCwndNeverExceedsCwndCapBytes) {
    // Regression: inflation sites used to push cwnd past the configured cap
    // (§9.2's backlog-vs-window split depends on it). Every mutation now
    // funnels through the strategy's capped setter.
    tcp::TcpConfig cfg = ScriptedSocket::scriptedConfig();
    cfg.cwndCapBytes = 250;
    ScriptedSocket s(cfg);
    std::uint32_t maxCwnd = 0;
    s.client->setCwndTracer(
        [&maxCwnd](sim::Time, std::uint32_t cwnd, std::uint32_t) {
            maxCwnd = std::max(maxCwnd, cwnd);
        });
    s.queue(800);
    s.injectAck(s.tcb().sndUna + 100);  // slow start wants 300
    EXPECT_EQ(s.tcb().cwnd, 250u);
    s.injectAck(s.tcb().sndUna + 100);
    EXPECT_EQ(s.tcb().cwnd, 250u);
    // Recovery entry (ssthresh + 3*mss would be 500+) and dupack inflation
    // must also respect the cap.
    const tcp::Seq una = s.tcb().sndUna;
    for (int i = 0; i < 5; ++i) s.injectAck(una);
    s.simulator.runUntil(s.simulator.now() + 5 * sim::kSecond);  // and RTO
    EXPECT_LE(maxCwnd, 250u);
}

// --- 3. NewReno equivalence against the pre-refactor engine ----------------

// Captured from the engine immediately BEFORE the CongestionControl
// extraction (same specs, same seeds, default NewReno config). Digest
// equality means the refactored socket drew the identical RNG stream —
// the strategy extraction is invisible at the byte level.
struct FrozenRun {
    std::size_t hops;
    std::optional<int> maxFrameRetries;
    double linkLoss;
    std::size_t totalBytes;
    std::size_t windowSegments;
    std::size_t mssFrames;
    sim::Time timeLimit;
    std::uint64_t seed;
    double goodputKbps;
    std::uint64_t frames;
    std::uint64_t rngDigest;
};

const FrozenRun kFrozenRuns[] = {
    // The sec72_hops hops=3 point.
    {3, std::nullopt, 0.0, 50000, 4, 5, 40 * sim::kMinute, 1,
     16.395884534606505, 6118, 4044727130047467477ULL},
    // The lossy-line regime (no link ARQ, 5% i.i.d. loss).
    {3, 0, 0.05, 60000, 8, 2, 20 * sim::kMinute, 7,
     0.41736335956185205, 10333, 8455050288062786643ULL},
};

scenario::ScenarioSpec specFor(const FrozenRun& fr) {
    scenario::ScenarioSpec s;
    s.topology.hops = fr.hops;
    s.topology.retryDelayMax = sim::fromMillis(40);
    s.topology.queueCapacityPackets = 24;
    s.topology.maxFrameRetries = fr.maxFrameRetries;
    s.topology.linkLoss = fr.linkLoss;
    s.workload.totalBytes = fr.totalBytes;
    s.workload.windowSegments = fr.windowSegments;
    s.workload.mssFrames = fr.mssFrames;
    s.workload.timeLimit = fr.timeLimit;
    return s;
}

TEST(CongestionControl, NewRenoReplaysThePreRefactorEngineByteForByte) {
    for (const FrozenRun& fr : kFrozenRuns) {
        const scenario::BulkRunResult r = scenario::runBulk(specFor(fr), fr.seed);
        EXPECT_DOUBLE_EQ(r.goodputKbps, fr.goodputKbps);
        EXPECT_EQ(r.framesTransmitted, fr.frames);
        EXPECT_EQ(r.rngDigest, fr.rngDigest);
        EXPECT_TRUE(r.contentOk);
    }
}

TEST(CongestionControl, VariantSelectionActuallyChangesTheByteStream) {
    // Sanity for the cc axis: a CERL run of the lossy frozen spec must NOT
    // replay NewReno's stream (otherwise the knob is dead).
    scenario::ScenarioSpec s = specFor(kFrozenRuns[1]);
    s.workload.cc = tcp::CcKind::kCerl;
    const scenario::BulkRunResult r = scenario::runBulk(s, kFrozenRuns[1].seed);
    EXPECT_NE(r.rngDigest, kFrozenRuns[1].rngDigest);
}

}  // namespace
