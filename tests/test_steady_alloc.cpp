// Steady-state allocation regression (own binary: it replaces the global
// operator new with a counting shim, which must not leak into tcplp_tests).
//
// Pins the tentpole invariant of the megascale datapath: once TCP ramps up,
// the simulator serves frames, segments and events from recycled storage —
// approximately zero heap allocations per delivered frame — and the two
// heap-fallback escape hatches (SmallFn closures, PacketBuffer::prepend)
// stay cold. CMake keeps this TU out of the tcplp_tests glob and links it
// as `tcplp_steady_alloc`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/small_fn.hpp"

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
constexpr bool kCountingNew =
#if defined(__SANITIZE_ADDRESS__)
    false;  // ASan interposes allocation; the shim below is compiled out.
#else
    true;
#endif
}  // namespace

#if !defined(__SANITIZE_ADDRESS__)
void* operator new(std::size_t n) {
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

/// Steady-state window sampler fed by the channel delivery tap: frames are
/// (tick, transmitter) transitions, the window opens at `warmup` and tracks
/// the allocation counter at every delivery, so setup, TCP ramp and
/// teardown stay out of the measurement.
struct SteadyProbe {
    sim::Time warmup = 0;
    bool armed = false;
    std::uint64_t frames = 0;
    std::uint64_t allocsAtWarm = 0, framesAtWarm = 0, allocsLast = 0;
    sim::Time lastNow = -1;
    phy::NodeId lastSrc = 0;

    void onDelivery(sim::Time now, phy::NodeId src) {
        if (now != lastNow || src != lastSrc) {
            ++frames;
            lastNow = now;
            lastSrc = src;
        }
        allocsLast = g_allocCount.load(std::memory_order_relaxed);
        if (!armed && now >= warmup) {
            armed = true;
            allocsAtWarm = allocsLast;
            framesAtWarm = frames;
        }
    }
};

}  // namespace

TEST(SteadyAlloc, ThreeHopBulkRunsAllocationFree) {
    if (!kCountingNew) GTEST_SKIP() << "allocation counting disabled under ASan";

    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kLine;
    spec.topology.hops = 3;
    spec.workload.kind = WorkloadKind::kBulk;
    spec.workload.totalBytes = 200000;

    auto probe = std::make_shared<SteadyProbe>();
    probe->warmup = 10 * sim::kSecond;
    spec.workload.deliveryTap = [probe](sim::Time now, phy::NodeId src, phy::NodeId,
                                        std::size_t, bool) {
        probe->onDelivery(now, src);
    };

    const std::uint64_t smallFn0 = sim::SmallFn::heapFallbacks();
    const BulkRunResult r = runBulk(spec, 1);

    ASSERT_TRUE(r.contentOk);
    ASSERT_TRUE(probe->armed) << "transfer ended before the warmup window";
    const std::uint64_t steadyFrames = probe->frames - probe->framesAtWarm;
    const std::uint64_t steadyAllocs = probe->allocsLast - probe->allocsAtWarm;
    ASSERT_GT(steadyFrames, 1000u);
    const double perFrame = double(steadyAllocs) / double(steadyFrames);
    EXPECT_LT(perFrame, 0.05) << steadyAllocs << " allocs over " << steadyFrames
                              << " frames";

    // Every event closure fit the scheduler's inline storage: the relay
    // copy-on-writes this run performs (prepend at forwarding nodes) are
    // slab-served, which is exactly why allocs/frame stays ~0 above.
    EXPECT_EQ(sim::SmallFn::heapFallbacks(), smallFn0);
}

TEST(SteadyAlloc, EndpointEncodeKeepsPrependFallbackCold) {
    // Single hop: mote and border router originate every datagram they
    // send, so the kDefaultHeadroom budget must cover TCP framing + IPHC
    // and the prepend slow path must never fire. (Relays DO hit it — the
    // upstream sender still holds the frame for link retries, so the
    // forwarding re-encode is a mandatory, counted, slab-served copy.)
    for (const bool uplink : {true, false}) {
        ScenarioSpec spec;
        spec.topology.kind = TopologyKind::kLine;
        spec.topology.hops = 1;
        spec.workload.kind = WorkloadKind::kBulk;
        spec.workload.totalBytes = 50000;
        spec.workload.uplink = uplink;
        const std::uint64_t prepend0 = PacketBuffer::stats().prependFallbacks;
        const BulkRunResult r = runBulk(spec, 1);
        ASSERT_TRUE(r.contentOk);
        EXPECT_EQ(PacketBuffer::stats().prependFallbacks, prepend0)
            << "uplink=" << uplink;
    }
}
