// Unit tests: TCPlp's two specialized buffers (paper §4.3, Figure 1) and
// the segment wire codec.
#include <gtest/gtest.h>

#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/segment.hpp"
#include "tcplp/tcp/send_buffer.hpp"
#include "tcplp/tcp/seq.hpp"

using namespace tcplp;
using namespace tcplp::tcp;

// --- Zero-copy send buffer (§4.3.1) ----------------------------------------

TEST(SendBuffer, CopiedAppendAndRead) {
    SendBuffer sb(100);
    EXPECT_EQ(sb.append(toBytes("hello world")), 11u);
    EXPECT_EQ(toPrintable(sb.read(0, 5)), "hello");
    EXPECT_EQ(toPrintable(sb.read(6, 5)), "world");
}

TEST(SendBuffer, SharedAppendIsZeroCopy) {
    SendBuffer sb(1000);
    auto chunk = std::make_shared<const Bytes>(patternBytes(0, 500));
    EXPECT_EQ(sb.appendShared(chunk), 500u);
    // The buffer owns no storage for the aliased chunk.
    EXPECT_EQ(sb.ownedBytes(), 0u);
    EXPECT_EQ(sb.nodeCount(), 1u);
    EXPECT_TRUE(matchesPattern(0, sb.read(0, 500)));
}

TEST(SendBuffer, SharedAppendAllOrNothing) {
    SendBuffer sb(100);
    auto big = std::make_shared<const Bytes>(patternBytes(0, 200));
    EXPECT_EQ(sb.appendShared(big), 0u);  // refuses: cannot split an alias
    EXPECT_EQ(sb.size(), 0u);
}

TEST(SendBuffer, AckReleasesNodesAndPartials) {
    SendBuffer sb(100);
    sb.append(toBytes("aaaa"));
    sb.append(toBytes("bbbb"));
    sb.ack(6);  // drops the first node, half the second
    EXPECT_EQ(sb.size(), 2u);
    EXPECT_EQ(sb.nodeCount(), 1u);
    EXPECT_EQ(toPrintable(sb.read(0, 2)), "bb");
}

TEST(SendBuffer, ReadSpansNodes) {
    SendBuffer sb(100);
    sb.append(toBytes("abc"));
    sb.append(toBytes("def"));
    sb.append(toBytes("ghi"));
    EXPECT_EQ(toPrintable(sb.read(1, 7)), "bcdefgh");
}

TEST(SendBuffer, AppendClampsToCapacity) {
    SendBuffer sb(10);
    EXPECT_EQ(sb.append(patternBytes(0, 25)), 10u);
    EXPECT_EQ(sb.free(), 0u);
}

// --- In-place reassembly receive buffer (§4.3.2, Figure 1b) ------------------

TEST(RecvBuffer, InOrderInsertAdvances) {
    RecvBuffer rb(100);
    EXPECT_EQ(rb.insert(0, toBytes("hello")), 5u);
    EXPECT_EQ(rb.readable(), 5u);
    EXPECT_EQ(toPrintable(rb.read(5)), "hello");
}

TEST(RecvBuffer, OutOfOrderHeldThenCommitted) {
    RecvBuffer rb(100);
    EXPECT_EQ(rb.insert(5, toBytes("world")), 0u);  // gap: held out of order
    EXPECT_EQ(rb.readable(), 0u);
    EXPECT_EQ(rb.outOfOrderBytes(), 5u);
    EXPECT_EQ(rb.insert(0, toBytes("hello")), 10u);  // gap filled: both commit
    EXPECT_EQ(toPrintable(rb.read(10)), "helloworld");
    EXPECT_EQ(rb.outOfOrderBytes(), 0u);
}

TEST(RecvBuffer, SackRangesDescribeHeldData) {
    RecvBuffer rb(100);
    rb.insert(10, toBytes("BB"));
    rb.insert(20, toBytes("CCC"));
    const auto ranges = rb.sackRanges();
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].begin, 10u);
    EXPECT_EQ(ranges[0].end, 12u);
    EXPECT_EQ(ranges[1].begin, 20u);
    EXPECT_EQ(ranges[1].end, 23u);
}

TEST(RecvBuffer, WindowShrinksWithUnreadData) {
    RecvBuffer rb(50);
    rb.insert(0, patternBytes(0, 30));
    EXPECT_EQ(rb.window(), 20u);
    rb.read(30);
    EXPECT_EQ(rb.window(), 50u);
}

TEST(RecvBuffer, InsertBeyondWindowTrimmed) {
    RecvBuffer rb(10);
    EXPECT_EQ(rb.insert(0, patternBytes(0, 20)), 10u);  // trimmed to capacity
    EXPECT_EQ(rb.insert(5, toBytes("zz")), 0u);         // no room at all
}

TEST(RecvBuffer, OverlapTrimmedByCallerSemantics) {
    // Offsets are relative to rcv_nxt at call time; the TCP layer trims
    // duplicate prefixes before calling insert. Model a retransmission
    // whose first half was already committed.
    RecvBuffer rb(100);
    rb.insert(0, toBytes("gh"));  // commits 2, rcv_nxt advances by 2
    rb.insert(0, toBytes("ij"));  // caller-trimmed remainder of "ghij"
    EXPECT_EQ(rb.readable(), 4u);
    EXPECT_EQ(toPrintable(rb.read(4)), "ghij");
}

TEST(RecvBuffer, DuplicateOutOfOrderInsertIdempotent) {
    RecvBuffer rb(100);
    rb.insert(4, toBytes("EF"));
    rb.insert(4, toBytes("EF"));  // retransmitted OOO segment
    EXPECT_EQ(rb.outOfOrderBytes(), 2u);
    rb.insert(0, toBytes("abcd"));
    EXPECT_EQ(toPrintable(rb.read(6)), "abcdEF");
}

TEST(RecvBuffer, ManySegmentReorderingScenario) {
    // Property-style: insert segments of a 1000-byte stream in a scrambled
    // order; the committed stream must be exact.
    RecvBuffer rb(2048);
    const Bytes stream = patternBytes(0, 1000);
    const std::size_t kSeg = 100;
    const std::size_t order[] = {3, 0, 7, 1, 2, 9, 5, 4, 6, 8};
    std::size_t committed = 0;
    for (std::size_t idx : order) {
        const std::size_t off = idx * kSeg;
        const std::size_t rel = off >= committed ? off - committed : 0;
        committed += rb.insert(rel, BytesView(stream.data() + off, kSeg));
    }
    EXPECT_EQ(committed, 1000u);
    EXPECT_TRUE(matchesPattern(0, rb.read(1000)));
}

// --- Sequence arithmetic -----------------------------------------------------

TEST(SeqArith, WrapsCorrectly) {
    const Seq nearMax = 0xfffffff0u;
    EXPECT_TRUE(seqLt(nearMax, nearMax + 0x20));  // wrapped forward
    EXPECT_TRUE(seqGt(nearMax + 0x20, nearMax));
    EXPECT_EQ(seqDiff(nearMax + 0x20, nearMax), 0x20);
    EXPECT_EQ(seqMax(nearMax, nearMax + 1), nearMax + 1);
}

// --- Segment codec ------------------------------------------------------------

TEST(SegmentCodec, RoundTripAllOptions) {
    Segment s;
    s.srcPort = 49152;
    s.dstPort = 80;
    s.seq = 0xdeadbeef;
    s.ack = 0xfeedface;
    s.window = 1848;
    s.flags.ack = true;
    s.flags.psh = true;
    s.mssOption = 462;
    s.sackPermitted = true;
    s.timestamps = Timestamps{123456, 654321};
    s.sackBlocks = {{100, 200}, {300, 400}};
    s.payload = patternBytes(0, 50);

    const PacketBuffer wire = s.encode();
    const auto d = Segment::decode(wire);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->srcPort, s.srcPort);
    EXPECT_EQ(d->dstPort, s.dstPort);
    EXPECT_EQ(d->seq, s.seq);
    EXPECT_EQ(d->ack, s.ack);
    EXPECT_EQ(d->window, s.window);
    EXPECT_TRUE(d->flags.ack);
    EXPECT_TRUE(d->flags.psh);
    EXPECT_EQ(d->mssOption, s.mssOption);
    EXPECT_TRUE(d->sackPermitted);
    ASSERT_TRUE(d->timestamps);
    EXPECT_EQ(d->timestamps->value, 123456u);
    EXPECT_EQ(d->timestamps->echo, 654321u);
    EXPECT_EQ(d->sackBlocks, s.sackBlocks);
    EXPECT_EQ(d->payload, s.payload);
}

TEST(SegmentCodec, HeaderSizeWithinPaperRange) {
    // Table 6: TCP header 20-44 bytes.
    Segment bare;
    EXPECT_EQ(bare.headerBytes(), 20u);

    Segment syn;
    syn.flags.syn = true;
    syn.mssOption = 462;
    syn.sackPermitted = true;
    syn.timestamps = Timestamps{1, 0};
    EXPECT_LE(syn.headerBytes(), 44u);

    Segment full;
    full.timestamps = Timestamps{1, 2};
    full.sackBlocks = {{1, 2}, {3, 4}, {5, 6}};  // 3 SACK blocks max
    EXPECT_LE(full.headerBytes(), 60u);
    EXPECT_EQ(full.headerBytes() % 4, 0u);
}

TEST(SegmentCodec, RejectsTruncatedInput) {
    Segment s;
    s.timestamps = Timestamps{1, 2};
    const Bytes wire = s.encode().toBytes();
    for (std::size_t cut = 1; cut < 20; ++cut) {
        EXPECT_FALSE(
            Segment::decode(BytesView(wire.data(), cut)).has_value());
    }
}

TEST(SegmentCodec, FlagsRoundTrip) {
    for (int bits = 0; bits < 256; ++bits) {
        const Flags f = Flags::decode(std::uint8_t(bits));
        const std::uint8_t re = f.encode();
        // Bits 5 (URG) is unsupported and dropped; all others round trip.
        EXPECT_EQ(re & 0xdf, std::uint8_t(bits) & 0xdf);
    }
}
