// Mesh/forwarding tests: fragment forwarding vs per-hop reassembly, RED
// queue integration, routing, hop-limit, and multi-flow behavior.
#include <gtest/gtest.h>

#include "tcplp/app/bulk.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/udp.hpp"

using namespace tcplp;

namespace {

// UDP echo across N mesh hops, in both forwarding modes.
class ForwardingMode : public ::testing::TestWithParam<bool> {};

TEST_P(ForwardingMode, UdpLargeDatagramAcrossThreeHops) {
    const bool perHop = GetParam();
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = perHop;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(40);
    auto tb = harness::Testbed::line(3, cfg);

    mesh::Node& mote = *tb->findNode(12);
    transport::UdpStack moteUdp(mote);
    transport::UdpStack cloudUdp(tb->cloud());

    Bytes got;
    cloudUdp.bind(9000, [&](const transport::UdpDatagram& d) { got = d.payload; });
    // 700 bytes: forces 6LoWPAN fragmentation across every hop.
    moteUdp.sendTo(tb->cloud().address(), 9000, 1234, patternBytes(0, 700));
    tb->simulator().runUntil(30 * sim::kSecond);

    ASSERT_EQ(got.size(), 700u);
    EXPECT_TRUE(matchesPattern(0, got));
}

INSTANTIATE_TEST_SUITE_P(BothModes, ForwardingMode, ::testing::Bool());

TEST(MeshForwarding, FragmentForwardingDoesNotReassembleAtRelays) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = false;
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& mote = *tb->findNode(11);
    mesh::Node& relay = *tb->findNode(10);

    transport::UdpStack moteUdp(mote);
    transport::UdpStack cloudUdp(tb->cloud());
    int delivered = 0;
    cloudUdp.bind(9000, [&](const transport::UdpDatagram&) { ++delivered; });
    moteUdp.sendTo(tb->cloud().address(), 9000, 1, patternBytes(0, 600));
    tb->simulator().runUntil(10 * sim::kSecond);

    EXPECT_EQ(delivered, 1);
    // The relay forwarded raw fragments; only the border router reassembled.
    EXPECT_EQ(relay.reassembler()->stats().delivered, 0u);
}

TEST(MeshForwarding, PerHopReassemblyRunsRelaysThroughReassembler) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = true;
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& mote = *tb->findNode(11);
    mesh::Node& relay = *tb->findNode(10);

    transport::UdpStack moteUdp(mote);
    transport::UdpStack cloudUdp(tb->cloud());
    int delivered = 0;
    cloudUdp.bind(9000, [&](const transport::UdpDatagram&) { ++delivered; });
    moteUdp.sendTo(tb->cloud().address(), 9000, 1, patternBytes(0, 600));
    tb->simulator().runUntil(10 * sim::kSecond);

    EXPECT_EQ(delivered, 1);
    EXPECT_GE(relay.reassembler()->stats().delivered, 1u);
}

TEST(MeshForwarding, HopLimitExpiresOnRoutingLoop) {
    // Two routers pointing default routes at each other: packets must die.
    harness::TestbedConfig cfg;
    auto tb = std::make_unique<harness::Testbed>(cfg);
    mesh::NodeConfig nc;
    mesh::Node& a = tb->addNode(10, {0, 0}, nc);
    mesh::Node& b = tb->addNode(11, {10, 0}, nc);
    a.setDefaultRoute(11);
    b.setDefaultRoute(10);

    transport::UdpStack udpA(a);
    udpA.sendTo(ip6::Address::meshLocal(77), 9, 9, toBytes("loop"));
    tb->simulator().runUntil(2 * sim::kMinute);
    EXPECT_GE(a.stats().noRouteDrops + b.stats().noRouteDrops, 1u);
    // The simulation drained (no infinite forwarding).
    EXPECT_EQ(tb->simulator().pendingEvents(), 0u);
}

TEST(MeshForwarding, QueueOverflowDropsCounted) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.queueConfig.capacityPackets = 2;
    auto tb = harness::Testbed::line(1, cfg);
    mesh::Node& mote = *tb->findNode(10);
    transport::UdpStack moteUdp(mote);
    for (int i = 0; i < 10; ++i)
        moteUdp.sendTo(tb->cloud().address(), 9000, 1, patternBytes(0, 400));
    tb->simulator().runUntil(10 * sim::kSecond);
    EXPECT_GT(mote.stats().forwardDrops, 0u);
}

TEST(MeshForwarding, EcnMarkSurvivesMeshTraversal) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.perHopReassembly = true;
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& mote = *tb->findNode(11);

    // Register a raw protocol on the cloud to observe the ECN field.
    ip6::Ecn seen = ip6::Ecn::kNotCapable;
    tb->cloud().registerProtocol(200, [&](const ip6::Packet& p) { seen = p.ecn(); });

    ip6::Packet p;
    p.dst = tb->cloud().address();
    p.nextHeader = 200;
    p.setEcn(ip6::Ecn::kCongestionExperienced);
    p.payload = patternBytes(0, 50);
    mote.sendPacket(std::move(p));
    tb->simulator().runUntil(10 * sim::kSecond);
    EXPECT_EQ(seen, ip6::Ecn::kCongestionExperienced);
}

TEST(MeshForwarding, TwoSimultaneousTcpFlowsBothComplete) {
    harness::TestbedConfig cfg;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(40);
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& mote = *tb->findNode(11);
    mesh::Node& relay = *tb->findNode(10);

    tcp::TcpStack stackA(mote);
    tcp::TcpStack stackB(relay);
    tcp::TcpStack cloud(tb->cloud());

    app::GoodputMeter meterA(tb->simulator()), meterB(tb->simulator());
    tcp::TcpConfig serv;
    serv.sendBufferBytes = serv.recvBufferBytes = 16384;
    cloud.listen(80, serv, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterA.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    cloud.listen(81, serv, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterB.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    tcp::TcpSocket& a = stackA.createSocket({});
    tcp::TcpSocket& b = stackB.createSocket({});
    app::BulkSender sa(a, 20000), sb(b, 20000);
    a.connect(tb->cloud().address(), 80);
    b.connect(tb->cloud().address(), 81);
    tb->simulator().runUntil(10 * sim::kMinute);

    EXPECT_EQ(meterA.bytes(), 20000u);
    EXPECT_EQ(meterB.bytes(), 20000u);
    EXPECT_TRUE(meterA.contentOk());
    EXPECT_TRUE(meterB.contentOk());
}

TEST(OfficeTopology, SensorsSitThreeToFiveHopsOut) {
    auto tb = harness::Testbed::office({});
    // Hop count via default-route walk from each sensor to the border.
    for (phy::NodeId id : {12, 13, 14, 15}) {
        int hops = 0;
        mesh::Node* cur = tb->findNode(phy::NodeId(id));
        ASSERT_NE(cur, nullptr);
        while (cur->id() != 1 && hops < 10) {
            // Follow the route toward the border router (dst 1).
            ip6::Packet probe;
            probe.dst = ip6::Address::meshLocal(1);
            // Use the routing table indirectly: every non-border node has a
            // default route; walk it via the stats-free lookup by sending
            // isn't exposed, so approximate with geometry: each hop in the
            // tree reduces distance to the border.
            break;
        }
        (void)hops;
    }
    // Structural check: node 15 is farther from the border than node 12.
    const auto& r15 = *tb->findNode(15)->radio();
    const auto& r12 = *tb->findNode(12)->radio();
    const auto& border = *tb->borderRouter().radio();
    auto dist = [](const phy::Radio& a, const phy::Radio& b) {
        const double dx = a.position().x - b.position().x;
        const double dy = a.position().y - b.position().y;
        return dx * dx + dy * dy;
    };
    EXPECT_GT(dist(r15, border), dist(r12, border));
}

}  // namespace
