// Scheduler backend A/B equivalence at the scenario level.
//
// The heap- and wheel-backed simulators must be indistinguishable up to
// wall-clock time: the same scenario run on both backends consumes the
// identical RNG draw sequence (Rng::stateDigest) and delivers the identical
// frame stream (the channel's delivery tap, hashed in order). This is the
// scenario-scale counterpart to the storm-log identity in test_sim.cpp, on
// the two workloads the timer wheel was built for: the office 15-node tree
// and the 200-node dense grid, both timer-dominated (RTO, delayed-ACK,
// CSMA backoff and per-hop forwarding timers clustering at few deadlines).
#include <gtest/gtest.h>

#include <cstdint>

#include "tcplp/scenario/workloads.hpp"

using namespace tcplp;
using scenario::ScenarioSpec;
using scenario::TopologyKind;
using scenario::WorkloadKind;

namespace {

/// Order-sensitive FNV-1a over the delivery stream plus the final RNG
/// digest: equal fingerprints mean the two runs made the same deliveries at
/// the same times with the same fading outcomes, in the same order.
struct Fingerprint {
    std::uint64_t rngDigest = 0;
    std::uint64_t deliveryHash = 1469598103934665603ull;
    std::uint64_t deliveries = 0;
    double aggregateKbps = 0.0;
    std::uint64_t framesTransmitted = 0;

    void mix(std::uint64_t v) {
        deliveryHash ^= v;
        deliveryHash *= 1099511628211ull;
    }

    /// The one hashing recipe every equivalence test installs.
    phy::Channel::DeliveryTap tap() {
        return [this](sim::Time now, phy::NodeId src, phy::NodeId dst,
                      std::size_t bytes, bool faded) {
            mix(std::uint64_t(now));
            mix((std::uint64_t(src) << 32) | std::uint64_t(dst));
            mix((std::uint64_t(bytes) << 1) | std::uint64_t(faded));
            ++deliveries;
        };
    }

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint runMultiFlowWith(sim::SchedulerKind kind, ScenarioSpec spec,
                             std::uint64_t seed) {
    Fingerprint fp;
    spec.topology.scheduler = kind;
    spec.workload.deliveryTap = fp.tap();
    const scenario::MultiFlowResult r = scenario::runMultiFlow(spec, seed);
    fp.rngDigest = r.rngDigest;
    fp.aggregateKbps = r.aggregateKbps;
    fp.framesTransmitted = r.framesTransmitted;
    return fp;
}

/// The office_multiflow scenario (mixed up/downlink on the Fig. 3 tree),
/// shortened so both backends run in test time.
ScenarioSpec officeSpec() { return scenario::officeMultiflowSpec(40 * sim::kSecond); }

/// The grid200_dense scenario (200 radios, six saturating mixed-direction
/// flows over the spatial channel index), shortened for test time.
ScenarioSpec grid200Spec() { return scenario::grid200DenseSpec(10 * sim::kSecond); }

}  // namespace

TEST(TimerWheelEquivalence, OfficeMultiflowIdenticalAcrossBackends) {
    const Fingerprint heap =
        runMultiFlowWith(sim::SchedulerKind::kBinaryHeap, officeSpec(), 1);
    const Fingerprint wheel =
        runMultiFlowWith(sim::SchedulerKind::kTimerWheel, officeSpec(), 1);
    ASSERT_GT(heap.deliveries, 0u);
    ASSERT_GT(heap.aggregateKbps, 0.0);
    EXPECT_EQ(heap, wheel);
}

TEST(TimerWheelEquivalence, Grid200DenseIdenticalAcrossBackends) {
    const Fingerprint heap =
        runMultiFlowWith(sim::SchedulerKind::kBinaryHeap, grid200Spec(), 42);
    const Fingerprint wheel =
        runMultiFlowWith(sim::SchedulerKind::kTimerWheel, grid200Spec(), 42);
    ASSERT_GT(heap.deliveries, 0u);
    ASSERT_GT(heap.aggregateKbps, 0.0);
    EXPECT_EQ(heap, wheel);
}

TEST(TimerWheelEquivalence, AnemometerIdenticalAcrossBackends) {
    // The §9 application study runs through its own harness
    // (runAnemometer), which threads the scheduler knob and delivery tap
    // separately from buildTestbed — pin that path too. Durations cut down
    // from the paper's 30 min so both backends fit in test time.
    ScenarioSpec s;
    s.workload.kind = WorkloadKind::kAnemometer;
    s.workload.anemometer.duration = 2 * sim::kMinute;
    s.workload.anemometer.warmup = 30 * sim::kSecond;
    s.workload.anemometer.drain = 30 * sim::kSecond;

    auto runOne = [&](sim::SchedulerKind kind) {
        Fingerprint fp;
        ScenarioSpec spec = s;
        spec.topology.scheduler = kind;
        spec.workload.deliveryTap = fp.tap();
        const harness::AnemometerResult r = scenario::runAnemometerSpec(spec, 3);
        fp.rngDigest = r.rngDigest;
        fp.aggregateKbps = r.reliability;
        fp.framesTransmitted = r.delivered;
        EXPECT_GT(r.delivered, 0u);
        return fp;
    };
    const Fingerprint heap = runOne(sim::SchedulerKind::kBinaryHeap);
    const Fingerprint wheel = runOne(sim::SchedulerKind::kTimerWheel);
    ASSERT_GT(heap.deliveries, 0u);
    EXPECT_EQ(heap, wheel);
}

TEST(TimerWheelEquivalence, BulkOverLossyLineIdenticalAcrossBackends) {
    // A third angle: the lossy 3-hop line drives heavy RTO/backoff activity
    // (the timer paths the wheel reorganizes most), with per-frame fading
    // consuming RNG draws whose order any scheduling difference would skew.
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kLine;
    s.topology.hops = 3;
    s.topology.linkLoss = 0.1;
    s.workload.kind = WorkloadKind::kBulk;
    s.workload.totalBytes = 30000;
    s.workload.timeLimit = 5 * sim::kMinute;

    auto runOne = [&](sim::SchedulerKind kind) {
        Fingerprint fp;
        ScenarioSpec spec = s;
        spec.topology.scheduler = kind;
        spec.workload.deliveryTap = fp.tap();
        const scenario::BulkRunResult r = scenario::runBulk(spec, 7);
        fp.rngDigest = r.rngDigest;
        fp.aggregateKbps = r.goodputKbps;
        fp.framesTransmitted = r.framesTransmitted;
        EXPECT_TRUE(r.contentOk);
        return fp;
    };
    const Fingerprint heap = runOne(sim::SchedulerKind::kBinaryHeap);
    const Fingerprint wheel = runOne(sim::SchedulerKind::kTimerWheel);
    ASSERT_GT(heap.deliveries, 0u);
    EXPECT_EQ(heap, wheel);
}
