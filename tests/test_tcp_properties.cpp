// Property-style parameterized sweeps over the TCP engine: for a grid of
// loss rates, delays, MSS values and seeds, every accepted byte must be
// delivered exactly once, in order, with verified content.
#include <gtest/gtest.h>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

struct TransferParam {
    double lossAtoB;
    double lossBtoA;
    sim::Time delay;
    std::uint16_t mss;
    std::size_t bytes;
    std::uint64_t seed;
};

void PrintTo(const TransferParam& p, std::ostream* os) {
    *os << "loss(" << p.lossAtoB << "," << p.lossBtoA << ") delay=" << sim::toMillis(p.delay)
        << "ms mss=" << p.mss << " bytes=" << p.bytes << " seed=" << p.seed;
}

class TcpTransferProperty : public ::testing::TestWithParam<TransferParam> {};

TEST_P(TcpTransferProperty, ExactInOrderDelivery) {
    const TransferParam& p = GetParam();
    sim::Simulator simulator(p.seed);
    harness::PipeConfig pc;
    pc.lossAtoB = p.lossAtoB;
    pc.lossBtoA = p.lossBtoA;
    pc.oneWayDelay = p.delay;
    harness::Pipe pipe(simulator, pc);
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    tcp::TcpConfig cfg;
    cfg.mss = p.mss;
    cfg.sendBufferBytes = cfg.recvBufferBytes = 4 * std::size_t(p.mss);

    Bytes received;
    bool serverClosed = false;
    serverStack.listen(80, cfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { append(received, d); });
        s.setOnPeerFin([&] {
            serverClosed = true;
        });
    });

    tcp::TcpSocket& client = clientStack.createSocket(cfg);
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < p.bytes) {
            const std::size_t chunk = std::min<std::size_t>(300, p.bytes - offset);
            const std::size_t n = client.send(patternBytes(offset, chunk));
            if (n == 0) break;
            offset += n;
        }
        if (offset >= p.bytes) client.close();
    };
    client.setOnSendSpace(pump);
    client.setOnConnected(pump);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(4 * sim::kHour);

    // The invariants: every byte delivered exactly once, in order.
    ASSERT_EQ(received.size(), p.bytes);
    EXPECT_TRUE(matchesPattern(0, received));
    EXPECT_TRUE(serverClosed);  // FIN made it through too
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpTransferProperty,
    ::testing::Values(
        TransferParam{0.00, 0.00, sim::fromMillis(10), 462, 20000, 1},
        TransferParam{0.05, 0.00, sim::fromMillis(10), 462, 20000, 2},
        TransferParam{0.00, 0.05, sim::fromMillis(10), 462, 20000, 3},
        TransferParam{0.10, 0.10, sim::fromMillis(10), 462, 20000, 4},
        TransferParam{0.20, 0.05, sim::fromMillis(50), 462, 15000, 5},
        TransferParam{0.30, 0.30, sim::fromMillis(50), 462, 6000, 6},
        TransferParam{0.05, 0.05, sim::fromMillis(200), 462, 15000, 7},
        TransferParam{0.10, 0.00, sim::fromMillis(500), 462, 10000, 8}));

INSTANTIATE_TEST_SUITE_P(
    MssGrid, TcpTransferProperty,
    ::testing::Values(TransferParam{0.05, 0.05, sim::fromMillis(20), 64, 8000, 11},
                      TransferParam{0.05, 0.05, sim::fromMillis(20), 128, 10000, 12},
                      TransferParam{0.05, 0.05, sim::fromMillis(20), 256, 12000, 13},
                      TransferParam{0.05, 0.05, sim::fromMillis(20), 536, 15000, 14},
                      TransferParam{0.05, 0.05, sim::fromMillis(20), 1024, 15000, 15}));

INSTANTIATE_TEST_SUITE_P(
    SeedGrid, TcpTransferProperty,
    ::testing::Values(TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 21},
                      TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 22},
                      TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 23},
                      TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 24},
                      TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 25},
                      TransferParam{0.15, 0.15, sim::fromMillis(30), 462, 10000, 26}));

// Feature-toggle grid: every combination of SACK / delayed ACK / timestamps
// must preserve the delivery invariant under loss.
struct FeatureParam {
    bool sack;
    bool delack;
    bool timestamps;
    bool dropOoo;
};

class TcpFeatureMatrix : public ::testing::TestWithParam<FeatureParam> {};

TEST_P(TcpFeatureMatrix, DeliveryInvariantHolds) {
    const FeatureParam& p = GetParam();
    sim::Simulator simulator(99);
    harness::PipeConfig pc;
    pc.lossAtoB = 0.12;
    pc.lossBtoA = 0.06;
    harness::Pipe pipe(simulator, pc);
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    tcp::TcpConfig cfg;
    cfg.sack = p.sack;
    cfg.delayedAck = p.delack;
    cfg.timestamps = p.timestamps;
    cfg.dropOutOfOrder = p.dropOoo;

    Bytes received;
    serverStack.listen(80, cfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { append(received, d); });
    });
    tcp::TcpSocket& client = clientStack.createSocket(cfg);
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < 12000) {
            const std::size_t n = client.send(patternBytes(offset, 400));
            if (n == 0) break;
            offset += n;
        }
    };
    client.setOnSendSpace(pump);
    client.setOnConnected(pump);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(2 * sim::kHour);

    ASSERT_GE(received.size(), 12000u);
    EXPECT_TRUE(matchesPattern(0, BytesView(received.data(), 12000)));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TcpFeatureMatrix,
                         ::testing::Values(FeatureParam{true, true, true, false},
                                           FeatureParam{false, true, true, false},
                                           FeatureParam{true, false, true, false},
                                           FeatureParam{true, true, false, false},
                                           FeatureParam{false, false, false, false},
                                           FeatureParam{false, false, true, false},
                                           FeatureParam{true, false, false, false},
                                           FeatureParam{false, true, false, false},
                                           FeatureParam{true, true, true, true}));

// Sequence-number wraparound: connections whose ISS sits just below 2^32
// must transfer across the wrap transparently.
TEST(TcpWraparound, TransfersAcrossSeqWrap) {
    sim::Simulator simulator(5);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    // Drive the ISS close to (but safely below) the wrap point, so the
    // 200 kB transfer crosses seq 2^32 mid-stream.
    while (true) {
        const std::uint32_t iss = clientStack.nextIss();
        if (iss >= 0xfffd0000u && iss < 0xfffe0000u) break;
    }
    Bytes received;
    serverStack.listen(80, {}, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { append(received, d); });
    });
    tcp::TcpSocket& client = clientStack.createSocket({});
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < 200000) {  // guaranteed to cross the wrap
            const std::size_t chunk = std::min<std::size_t>(462, 200000 - offset);
            const std::size_t n = client.send(patternBytes(offset, chunk));
            if (n == 0) break;
            offset += n;
        }
    };
    client.setOnSendSpace(pump);
    client.setOnConnected(pump);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(10 * sim::kMinute);
    ASSERT_EQ(received.size(), 200000u);
    EXPECT_TRUE(matchesPattern(0, received));
}

}  // namespace
