// Self-healing mesh routing: link-liveness tracking, ranked alternate
// next hops, and the failover/failback machinery.
//
// The load-bearing guarantees pinned here:
//
//  1. Liveness learning: K consecutive exhausted-retry failures mark a
//     neighbor unreachable, any later success revives it, and unknown
//     neighbors (or a disabled table) are always live.
//
//  2. Ranked routing: lookups return the best-ranked live candidate,
//     sliding down on failure (reroute), back up on revival (failback),
//     and counting a blackhole drop when a route exists but every
//     candidate is dead. Without a liveness source the manager behaves
//     exactly like the static map it replaced.
//
//  3. Alternate install: installTreeRoutes with selfHealing computes the
//     loop-free alternates the Fig. 3 office geometry implies — sensor
//     15 can reach the border over either 10 or 11, and its ancestors
//     hold the mirror-image downlink alternates.
//
//  4. Frame-burn fix: traffic toward a known-dead next hop is dropped at
//     the routing layer instead of burning full CSMA retry ladders on
//     the air — pinned as a large frame-count gap on a dead line relay.
//
//  5. Zero-cost when clean: a fault-free bulk run with selfHealing on is
//     byte-identical (RNG digest and goodput) to the same run with it
//     off — the liveness machinery draws nothing and schedules nothing
//     until a failure actually happens.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tcplp/harness/testbed.hpp"
#include "tcplp/mesh/neighbor_table.hpp"
#include "tcplp/mesh/route_manager.hpp"
#include "tcplp/scenario/chaos.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

mesh::NeighborConfig enabledConfig() {
    mesh::NeighborConfig cfg;
    cfg.enabled = true;
    cfg.failureThreshold = 2;
    cfg.probeInterval = 0;  // unit tests drive outcomes by hand
    return cfg;
}

}  // namespace

// --- NeighborTable ----------------------------------------------------------

TEST(Routing, NeighborUnknownOrDisabledIsLive) {
    sim::Simulator simulator;
    mesh::NeighborTable enabled(simulator, enabledConfig());
    EXPECT_TRUE(enabled.isLive(7));  // never heard of it

    mesh::NeighborTable disabled(simulator, mesh::NeighborConfig{});
    disabled.onTxOutcome(7, false);
    disabled.onTxOutcome(7, false);
    disabled.onTxOutcome(7, false);
    EXPECT_TRUE(disabled.isLive(7));  // master switch off: always live
    EXPECT_EQ(disabled.stats().deadMarks, 0u);
}

TEST(Routing, ConsecutiveFailuresKillAndSuccessRevives) {
    sim::Simulator simulator;
    mesh::NeighborTable table(simulator, enabledConfig());

    table.onTxOutcome(7, false);
    EXPECT_TRUE(table.isLive(7));  // one short of K=2
    table.onTxOutcome(7, false);
    EXPECT_FALSE(table.isLive(7));
    EXPECT_EQ(table.stats().deadMarks, 1u);

    table.onTxOutcome(7, true);
    EXPECT_TRUE(table.isLive(7));
    EXPECT_EQ(table.stats().revivals, 1u);

    // An interleaved success resets the consecutive count: fail, succeed,
    // fail never reaches K.
    table.onTxOutcome(9, false);
    table.onTxOutcome(9, true);
    table.onTxOutcome(9, false);
    EXPECT_TRUE(table.isLive(9));
    EXPECT_EQ(table.stats().deadMarks, 1u);
}

TEST(Routing, ResetForgetsLearnedVerdicts) {
    sim::Simulator simulator;
    mesh::NeighborTable table(simulator, enabledConfig());
    table.onTxOutcome(7, false);
    table.onTxOutcome(7, false);
    ASSERT_FALSE(table.isLive(7));
    table.reset();  // reboot: liveness is volatile state
    EXPECT_TRUE(table.isLive(7));
}

// --- RouteManager -----------------------------------------------------------

TEST(Routing, NullLivenessBehavesLikeTheStaticMap) {
    mesh::RouteManager routes;
    phy::NodeId hop = 0;
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kNoRoute);

    routes.setRoute(15, 10);
    routes.addAlternate(15, 11);
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(hop, 10);  // rank 0, always, no liveness source

    routes.setDefaultRoute(2);
    EXPECT_EQ(routes.lookup(99, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(hop, 2);  // unknown destination falls to the default

    // setRoute overwrite clears alternates (the map's replace semantics).
    routes.setRoute(15, 12);
    EXPECT_EQ(routes.candidates(15), (std::vector<phy::NodeId>{12}));
}

TEST(Routing, FailoverFailbackAndBlackholeCounting) {
    mesh::RouteManager routes;
    std::vector<phy::NodeId> dead;
    routes.setLiveness([&](phy::NodeId n) {
        return std::find(dead.begin(), dead.end(), n) == dead.end();
    });
    routes.setRoute(15, 10);
    routes.addAlternate(15, 11);
    routes.addAlternate(15, 11);  // deduplicated
    EXPECT_EQ(routes.candidates(15), (std::vector<phy::NodeId>{10, 11}));

    phy::NodeId hop = 0;
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(hop, 10);
    EXPECT_EQ(routes.reroutes(), 0u);

    dead = {10};  // primary dies -> slide down (one reroute, sticky)
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(hop, 11);
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(routes.reroutes(), 1u);
    EXPECT_EQ(routes.failbacks(), 0u);

    dead = {10, 11};  // everything dead -> blackhole, not kNoRoute
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kDead);
    EXPECT_EQ(routes.blackholeDrops(), 1u);

    dead = {};  // primary revives -> slide back up (one failback)
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(hop, 10);
    EXPECT_EQ(routes.failbacks(), 1u);

    // resetSelections (reboot) snaps to rank 0 without counting.
    dead = {10};
    (void)routes.lookup(15, hop);  // reroute #2
    routes.resetSelections();
    dead = {};
    const std::uint64_t failbacksBefore = routes.failbacks();
    EXPECT_EQ(routes.lookup(15, hop), mesh::RouteLookupStatus::kOk);
    EXPECT_EQ(routes.failbacks(), failbacksBefore);
}

TEST(Routing, DefaultAlternateNeedsAPrimary) {
    mesh::RouteManager routes;
    routes.addDefaultAlternate(11);  // would self-promote to rank 0: no-op
    EXPECT_FALSE(routes.hasDefaultRoute());
    routes.setDefaultRoute(10);
    routes.addDefaultAlternate(11);
    EXPECT_EQ(routes.defaultCandidates(), (std::vector<phy::NodeId>{10, 11}));
}

// --- Alternate install on the office tree -----------------------------------

TEST(Routing, OfficeTreeInstallsLoopFreeAlternates) {
    TopologySpec t;
    t.kind = TopologyKind::kOffice;
    t.selfHealing = true;
    auto tb = buildTestbed(t, /*seed=*/1);

    // Sensor 15 reaches the tree over either of the in-range siblings 10
    // (its BFS parent) and 11 — both one hop from it, both one hop closer
    // to the border router.
    const mesh::Node* sensor = tb->findNode(15);
    ASSERT_NE(sensor, nullptr);
    EXPECT_EQ(sensor->routeTable().defaultCandidates(),
              (std::vector<phy::NodeId>{10, 11}));

    // Ancestor 8 holds the mirror-image downlink alternates toward 15.
    const mesh::Node* ancestor = tb->findNode(8);
    ASSERT_NE(ancestor, nullptr);
    EXPECT_EQ(ancestor->routeTable().candidates(15),
              (std::vector<phy::NodeId>{10, 11}));

    // The alternate parent really can deliver: 11 is adjacent to 15.
    const mesh::Node* alt = tb->findNode(11);
    ASSERT_NE(alt, nullptr);
    EXPECT_EQ(alt->routeTable().candidates(15), (std::vector<phy::NodeId>{15}));

    // Liveness is armed on every router when selfHealing is on.
    ASSERT_NE(sensor->neighborTable(), nullptr);
    EXPECT_TRUE(sensor->neighborTable()->config().enabled);
}

TEST(Routing, LegacyOfficeTreeInstallsNoAlternates) {
    TopologySpec t;
    t.kind = TopologyKind::kOffice;
    auto tb = buildTestbed(t, /*seed=*/1);
    const mesh::Node* sensor = tb->findNode(15);
    ASSERT_NE(sensor, nullptr);
    EXPECT_EQ(sensor->routeTable().defaultCandidates(),
              (std::vector<phy::NodeId>{10}));
    const mesh::Node* node = tb->findNode(8);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->routeTable().candidates(15), (std::vector<phy::NodeId>{10}));
}

// --- Frame-burn fix ---------------------------------------------------------

TEST(Routing, DeadNextHopDropsAtRoutingInsteadOfBurningRetries) {
    // A line has no alternates, so a permanently dead relay blackholes the
    // flow either way — the difference is where the frames die. With
    // liveness on, the sensor learns the relay is gone after K=2 exhausted
    // ladders and drops at the routing layer; with it off, every TCP
    // retransmission and reconnect SYN burns a full CSMA ladder on the
    // air. The long ladder and the early death make the burn dominate the
    // frame count, pinning a >2x gap.
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kLine;
    spec.topology.hops = 2;
    spec.topology.maxFrameRetries = 15;
    spec.workload.totalBytes = 50000;  // cannot finish: the path is dead
    spec.workload.timeLimit = 90 * sim::kSecond;
    spec.fault.chaos = true;
    spec.fault.enabled = true;
    spec.fault.plan.fixed = {
        {sim::FaultKind::kNodeFailure, sim::kSecond / 2, 0, /*relay*/ 10, 0},
    };
    spec.fault.maxRetransmits = 2;  // give up fast, retry via reconnects
    spec.fault.watchdogStall = 0;   // the stall is the point

    ScenarioSpec healing = spec;
    healing.topology.selfHealing = true;
    // Probing off isolates the burn comparison: with the 2s cadence the
    // probes themselves (each burning a ladder toward the corpse) would
    // dominate the frame count over the 90s run.
    healing.topology.probeInterval = 0;

    const ChaosBulkResult burned = runChaosBulk(spec, /*seed=*/1);
    const ChaosBulkResult repaired = runChaosBulk(healing, /*seed=*/1);

    EXPECT_FALSE(burned.complete);
    EXPECT_FALSE(repaired.complete);
    EXPECT_GT(repaired.blackholeDrops, 0u);
    EXPECT_EQ(burned.blackholeDrops, 0u);
    // Pinned gap: the healing run must spend well under half the frames.
    EXPECT_LT(repaired.framesTransmitted * 2, burned.framesTransmitted);
}

// --- Zero cost when nothing fails -------------------------------------------

TEST(Routing, FaultFreeRunIsByteIdenticalWithSelfHealingOn) {
    ScenarioSpec off;
    off.topology.kind = TopologyKind::kOffice;
    off.workload.totalBytes = 15000;
    off.workload.timeLimit = 5 * sim::kMinute;

    ScenarioSpec on = off;
    on.topology.selfHealing = true;

    for (std::uint64_t seed : {1ull, 2ull}) {
        const BulkRunResult a = runBulk(off, seed);
        const BulkRunResult b = runBulk(on, seed);
        EXPECT_EQ(a.rngDigest, b.rngDigest) << "seed " << seed;
        EXPECT_EQ(a.goodputKbps, b.goodputKbps) << "seed " << seed;
        EXPECT_EQ(a.framesTransmitted, b.framesTransmitted) << "seed " << seed;
        EXPECT_TRUE(b.contentOk);
        EXPECT_EQ(b.mesh.reroutes, 0u);
        EXPECT_EQ(b.mesh.blackholeDrops, 0u);
    }
}
