// Unit tests: common primitives (ring buffer, bitmap, stats, bytes).
#include <gtest/gtest.h>

#include "tcplp/common/bitmap.hpp"
#include "tcplp/common/bytes.hpp"
#include "tcplp/common/ring_buffer.hpp"
#include "tcplp/common/stats.hpp"

using namespace tcplp;

TEST(Bytes, PatternRoundTrip) {
    const Bytes b = patternBytes(1234, 77);
    EXPECT_TRUE(matchesPattern(1234, b));
    EXPECT_FALSE(matchesPattern(1235, b));
}

TEST(Bytes, BigEndianCodec) {
    Bytes b;
    putU16(b, 0xbeef);
    putU32(b, 0xdeadc0de);
    EXPECT_EQ(getU16(b, 0), 0xbeef);
    EXPECT_EQ(getU32(b, 2), 0xdeadc0de);
}

TEST(RingBuffer, WriteReadWrapAround) {
    RingBuffer rb(8);
    EXPECT_EQ(rb.write(toBytes("abcdef")), 6u);
    EXPECT_EQ(toPrintable(rb.read(4)), "abcd");
    EXPECT_EQ(rb.write(toBytes("ghijkl")), 6u);  // wraps
    EXPECT_EQ(rb.size(), 8u);
    EXPECT_EQ(toPrintable(rb.read(8)), "efghijkl");
}

TEST(RingBuffer, WriteClampsToFree) {
    RingBuffer rb(4);
    EXPECT_EQ(rb.write(toBytes("abcdef")), 4u);
    EXPECT_EQ(rb.free(), 0u);
    EXPECT_EQ(rb.write(toBytes("x")), 0u);
}

TEST(RingBuffer, WriteAtThenCommit) {
    RingBuffer rb(16);
    rb.write(toBytes("ab"));
    rb.writeAt(2, toBytes("EF"));  // deposit past the tail with a gap
    rb.writeAt(0, toBytes("cd"));  // fill the gap
    rb.commit(4);
    EXPECT_EQ(toPrintable(rb.read(6)), "abcdEF");
}

TEST(RingBuffer, AtIndexesFromFront) {
    RingBuffer rb(4);
    rb.write(toBytes("wxyz"));
    rb.consume(2);
    rb.write(toBytes("AB"));
    EXPECT_EQ(rb.at(0), 'y');
    EXPECT_EQ(rb.at(3), 'B');
}

TEST(Bitmap, RangesAndRuns) {
    Bitmap bm(100);
    bm.setRange(10, 20);
    EXPECT_EQ(bm.countContiguousFrom(10), 10u);
    EXPECT_EQ(bm.countContiguousFrom(0), 0u);
    EXPECT_EQ(bm.popcount(), 10u);
    bm.clearRange(12, 14);
    EXPECT_EQ(bm.countContiguousFrom(10), 2u);
}

TEST(Bitmap, WordBoundarySpanningRun) {
    Bitmap bm(200);
    bm.setRange(60, 70);  // crosses the 64-bit word boundary
    EXPECT_EQ(bm.countContiguousFrom(60), 10u);
    EXPECT_TRUE(bm.test(63));
    EXPECT_TRUE(bm.test(64));
    EXPECT_FALSE(bm.test(70));
}

TEST(Summary, PercentilesAndMoments) {
    Summary s;
    for (int i = 1; i <= 100; ++i) s.add(double(i));
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
    EXPECT_NEAR(s.median(), 50.5, 0.001);
    EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 100.0);
}

TEST(Summary, Histogram) {
    Summary s;
    for (int i = 0; i < 10; ++i) s.add(0.5);
    for (int i = 0; i < 5; ++i) s.add(1.5);
    const auto h = s.histogram(0.0, 2.0, 2);
    EXPECT_EQ(h[0], 10u);
    EXPECT_EQ(h[1], 5u);
}
