// BufferArena (the mote packet heap) and its integration with PacketBuffer
// and the 6LoWPAN reassembler: carving, reuse after release, coalescing,
// exhaustion accounting, high-water reporting, and the headline property —
// zero heap allocations per reassembled datagram on the steady-state path.
#include <gtest/gtest.h>

#include <vector>

#include "tcplp/common/arena.hpp"
#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;

TEST(Arena, CarveReleaseRoundTripReusesMemory) {
    BufferArena arena(1024);
    void* a = arena.carve(100);
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(arena.owns(a));
    EXPECT_GE(arena.stats().bytesInUse, 100u);

    arena.release(a);
    EXPECT_EQ(arena.stats().bytesInUse, 0u);
    EXPECT_EQ(arena.outstandingChunks(), 0u);

    // The freed space is immediately reusable — and a full-capacity cycle
    // can repeat forever (no leak, no fragmentation from round trips).
    for (int i = 0; i < 100; ++i) {
        void* big = arena.carve(900);
        ASSERT_NE(big, nullptr) << "iteration " << i;
        arena.release(big);
    }
    EXPECT_EQ(arena.stats().exhaustionDrops, 0u);
}

TEST(Arena, ExhaustionDropsAreCountedAndNonFatal) {
    BufferArena arena(256);
    std::vector<void*> chunks;
    while (void* p = arena.carve(48)) chunks.push_back(p);
    EXPECT_GE(chunks.size(), 3u);
    EXPECT_EQ(arena.stats().exhaustionDrops, 1u);  // the failed carve above

    // Still exhausted for big requests; a release opens room again.
    EXPECT_EQ(arena.carve(48), nullptr);
    EXPECT_EQ(arena.stats().exhaustionDrops, 2u);
    arena.release(chunks.back());
    chunks.pop_back();
    void* again = arena.carve(48);
    EXPECT_NE(again, nullptr);
    arena.release(again);
    for (void* p : chunks) arena.release(p);
    EXPECT_EQ(arena.stats().bytesInUse, 0u);
}

TEST(Arena, HighWaterMarkTracksPeakNotCurrent) {
    BufferArena arena(2048);
    void* a = arena.carve(400);
    void* b = arena.carve(400);
    const std::size_t peak = arena.stats().bytesInUse;
    EXPECT_GE(peak, 800u);
    arena.release(a);
    arena.release(b);
    EXPECT_EQ(arena.stats().bytesInUse, 0u);
    EXPECT_EQ(arena.stats().highWaterBytes, peak);  // peak is sticky
    void* c = arena.carve(100);
    EXPECT_EQ(arena.stats().highWaterBytes, peak);  // smaller load: unchanged
    arena.release(c);
}

TEST(Arena, ReleaseCoalescesNeighborsIntoOneSpan) {
    BufferArena arena(1024);
    void* a = arena.carve(200);
    void* b = arena.carve(200);
    void* c = arena.carve(200);
    ASSERT_NE(c, nullptr);
    // Free the middle, then a neighbor on each side; a carve spanning the
    // combined region only succeeds if the three spans merged.
    arena.release(b);
    arena.release(a);
    arena.release(c);
    EXPECT_GE(arena.largestFreeChunk(), 600u);
    void* big = arena.carve(600);
    EXPECT_NE(big, nullptr);
    arena.release(big);
}

TEST(ArenaPacketBuffer, LastReferenceReturnsChunkToArena) {
    BufferArena arena(2048);
    {
        PacketBuffer b = PacketBuffer::allocateFrom(arena, 300);
        ASSERT_TRUE(b.valid());
        EXPECT_TRUE(b.arenaBacked());
        EXPECT_EQ(b.size(), 300u);
        // Sharing bumps refs, not memory: still one chunk outstanding.
        PacketBuffer view = b.subview(10, 50);
        PacketBuffer copy = b;
        EXPECT_EQ(arena.outstandingChunks(), 1u);
        EXPECT_TRUE(view.sharesStorageWith(b));
        EXPECT_TRUE(copy.sharesStorageWith(b));
    }
    // All references gone: chunk back in the arena.
    EXPECT_EQ(arena.outstandingChunks(), 0u);
    EXPECT_EQ(arena.stats().bytesInUse, 0u);
    EXPECT_GT(arena.stats().highWaterBytes, 0u);
}

TEST(ArenaPacketBuffer, ExhaustedCarveYieldsInvalidBuffer) {
    BufferArena arena(128);
    PacketBuffer b = PacketBuffer::allocateFrom(arena, 4096);
    EXPECT_FALSE(b.valid());
    EXPECT_EQ(arena.stats().exhaustionDrops, 1u);
}

TEST(ArenaPacketBuffer, CopyForWriteEscapesToHeapNotArena) {
    BufferArena arena(2048);
    PacketBuffer b = PacketBuffer::allocateFrom(arena, 64);
    ASSERT_TRUE(b.valid());
    PacketBuffer shared = b;  // two refs: mutation requires copy-on-write
    shared.copyForWrite();
    EXPECT_FALSE(shared.arenaBacked());  // the duplicate lives on the heap
    EXPECT_TRUE(b.arenaBacked());
    b = PacketBuffer();
    EXPECT_EQ(arena.outstandingChunks(), 0u);  // original chunk returned
    EXPECT_EQ(shared.size(), 64u);             // heap copy unaffected
}

// --- Reassembler integration ------------------------------------------------

namespace {

ip6::Packet makePacket(std::size_t payloadLen) {
    ip6::Packet p;
    p.src = ip6::Address::meshLocal(1);
    p.dst = ip6::Address::meshLocal(2);
    p.nextHeader = ip6::kProtoUdp;
    p.payload = patternBytes(3, payloadLen);
    return p;
}

}  // namespace

TEST(ReassemblyArena, SteadyStateReassemblyPerformsZeroHeapAllocations) {
    sim::Simulator simulator;
    BufferArena arena(4096);
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
        5 * sim::kSecond, &arena);

    const ip6::Packet p = makePacket(700);
    const auto frames = lowpan::encodeDatagram(p, 1, 2, 42, 104);
    ASSERT_GT(frames.size(), 1u);

    // Warm-up datagram (first-touch effects), then measure.
    for (const PacketBuffer& f : frames) reasm.input(1, 2, f);
    ASSERT_EQ(delivered, 1u);

    const std::uint64_t heapBlocksBefore = PacketBuffer::stats().allocations;
    const std::uint64_t carvesBefore = arena.stats().carves;
    constexpr std::uint64_t kDatagrams = 200;
    for (std::uint64_t d = 0; d < kDatagrams; ++d) {
        for (const PacketBuffer& f : frames) reasm.input(1, 2, f);
    }
    EXPECT_EQ(delivered, 1 + kDatagrams);
    // The headline property: gather buffers come from the arena, partial
    // state lives in fixed slots — the heap is untouched per datagram.
    EXPECT_EQ(PacketBuffer::stats().allocations - heapBlocksBefore, 0u);
    EXPECT_EQ(arena.stats().carves - carvesBefore, kDatagrams);
    // Every delivered datagram's chunk was returned on drop.
    EXPECT_EQ(arena.outstandingChunks(), 0u);
}

TEST(ReassemblyArena, ArenaExhaustionDropsDatagramAndCounts) {
    sim::Simulator simulator;
    BufferArena arena(256);  // far too small for a 700-byte datagram
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
        5 * sim::kSecond, &arena);

    const ip6::Packet p = makePacket(700);
    const auto frames = lowpan::encodeDatagram(p, 1, 2, 7, 104);
    for (const PacketBuffer& f : frames) reasm.input(1, 2, f);

    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(reasm.stats().arenaDrops, 1u);   // FRAG1 could not be housed
    EXPECT_EQ(reasm.stats().delivered, 0u);
    EXPECT_EQ(arena.outstandingChunks(), 0u);  // nothing leaked

    // A datagram that fits still flows — the arena recovered.
    const ip6::Packet small = makePacket(120);
    for (const PacketBuffer& f : lowpan::encodeDatagram(small, 1, 2, 8, 104)) {
        reasm.input(1, 2, f);
    }
    EXPECT_EQ(delivered, 1u);
}

TEST(ReassemblyArena, SlotExhaustionDropsNewestAndCounts) {
    sim::Simulator simulator;
    BufferArena arena(8192);
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
        5 * sim::kSecond, &arena, /*maxPartials=*/2);

    const ip6::Packet p = makePacket(300);
    const auto f1 = lowpan::encodeDatagram(p, 1, 9, 1, 104);
    const auto f2 = lowpan::encodeDatagram(p, 2, 9, 1, 104);
    const auto f3 = lowpan::encodeDatagram(p, 3, 9, 1, 104);

    // Two FRAG1s occupy both slots; the third source's FRAG1 is dropped.
    reasm.input(1, 9, f1[0]);
    reasm.input(2, 9, f2[0]);
    reasm.input(3, 9, f3[0]);
    EXPECT_EQ(reasm.stats().slotDrops, 1u);

    // The first two still complete; the third is gone with its FRAG1.
    for (std::size_t i = 1; i < f1.size(); ++i) {
        reasm.input(1, 9, f1[i]);
        reasm.input(2, 9, f2[i]);
        reasm.input(3, 9, f3[i]);
    }
    EXPECT_EQ(delivered, 2u);

    // With slots free again the dropped source can start over.
    for (const PacketBuffer& f : f3) reasm.input(3, 9, f);
    EXPECT_EQ(delivered, 3u);
}

TEST(ReassemblyArena, TimeoutReleasesArenaChunk) {
    sim::Simulator simulator;
    BufferArena arena(4096);
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
        1 * sim::kSecond, &arena);

    const ip6::Packet p = makePacket(700);
    const auto frames = lowpan::encodeDatagram(p, 1, 2, 5, 104);
    reasm.input(1, 2, frames[0]);
    EXPECT_EQ(arena.outstandingChunks(), 1u);  // gather buffer pinned

    simulator.runUntil(3 * sim::kSecond);
    // Expiry runs on the next input; the stale chunk must return.
    const ip6::Packet small = makePacket(60);
    reasm.input(3, 2, lowpan::encodeDatagram(small, 3, 2, 6, 104)[0]);
    EXPECT_EQ(reasm.stats().timedOut, 1u);
    EXPECT_EQ(arena.outstandingChunks(), 0u);
    EXPECT_EQ(delivered, 1u);
}

// Teardown-order regression: a wired-link transfer scheduled on the
// simulator captures the reassembled (arena-backed) packet; destroying the
// testbed mid-flight must release it while the owning node's arena is still
// alive (Testbed::~Testbed cancels pending events first). Sweeping cutoffs
// across the whole transfer guarantees some teardown lands inside the
// border-router -> cloud window; ASan enforces the absence of UAF.
TEST(ReassemblyArena, MidFlightTeardownReleasesInFlightPayloads) {
    for (int cutoffMs = 2; cutoffMs <= 60; cutoffMs += 2) {
        auto tb = harness::Testbed::line(1);
        mesh::Node& mote = *tb->findNode(10);
        ip6::Packet p;
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoUdp;
        p.payload = patternBytes(1, 700);  // fragments -> reassembled at border
        mote.sendPacket(std::move(p));
        tb->simulator().runUntil(sim::Time(cutoffMs) * sim::kMillisecond);
        // Testbed destroyed here, possibly with the wired transfer pending.
    }
}

// Reboot variant of the teardown sweep: instead of destroying the testbed,
// the reassembling border router *reboots* mid-transfer. The flush must
// release any arena-backed partial exactly once (no leak, no double-free —
// ASan enforces the latter), a payload already launched onto the wired link
// stays pinned only until that transfer drains, and the recovered router
// must keep forwarding fresh traffic afterwards.
TEST(ReassemblyArena, RebootMidFlightReleasesPartialsAndRecovers) {
    for (int cutoffMs = 2; cutoffMs <= 60; cutoffMs += 2) {
        auto tb = harness::Testbed::line(1);
        mesh::Node& mote = *tb->findNode(10);
        mesh::Node& border = tb->borderRouter();
        ip6::Packet p;
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoUdp;
        p.payload = patternBytes(1, 700);
        mote.sendPacket(std::move(p));
        const sim::Time cutoff = sim::Time(cutoffMs) * sim::kMillisecond;
        tb->simulator().runUntil(cutoff);

        border.reboot(50 * sim::kMillisecond);
        EXPECT_TRUE(border.isDown());
        // Drain: the downtime elapses and any in-flight wired transfer
        // completes, so every arena chunk must be home again.
        tb->simulator().runUntil(cutoff + sim::kSecond);
        EXPECT_FALSE(border.isDown());
        EXPECT_EQ(border.stats().reboots, 1u) << "cutoff " << cutoffMs;
        EXPECT_EQ(border.reassemblyArena()->outstandingChunks(), 0u)
            << "cutoff " << cutoffMs;

        // The cold-booted router still reassembles and forwards.
        ip6::Packet again;
        again.dst = ip6::Address::cloud(1000);
        again.nextHeader = ip6::kProtoUdp;
        again.payload = patternBytes(2, 700);
        mote.sendPacket(std::move(again));
        tb->simulator().runUntil(cutoff + 3 * sim::kSecond);
        EXPECT_EQ(border.reassemblyArena()->outstandingChunks(), 0u)
            << "cutoff " << cutoffMs;
    }
}

TEST(SimulatorTeardown, CancelAllPendingDestroysCallbacksEagerly) {
    sim::Simulator simulator;
    int destroyed = 0;
    struct Probe {
        int* counter;
        Probe(int* c) : counter(c) {}
        Probe(const Probe& o) : counter(o.counter) {}
        Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
        ~Probe() {
            if (counter != nullptr) ++*counter;
        }
    };
    simulator.schedule(100, [p = Probe(&destroyed)] { (void)p; });
    simulator.schedule(200, [p = Probe(&destroyed)] { (void)p; });
    EXPECT_EQ(simulator.pendingEvents(), 2u);
    simulator.cancelAllPending();
    EXPECT_EQ(simulator.pendingEvents(), 0u);
    EXPECT_EQ(destroyed, 2);
    simulator.run();  // nothing fires
    EXPECT_EQ(destroyed, 2);
}

TEST(ReassemblyArena, DeliveredPayloadPinsChunkUntilConsumerDropsIt) {
    sim::Simulator simulator;
    BufferArena arena(4096);
    ip6::Packet held;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet got, ip6::ShortAddr) { held = std::move(got); },
        5 * sim::kSecond, &arena);

    const ip6::Packet p = makePacket(500);
    for (const PacketBuffer& f : lowpan::encodeDatagram(p, 1, 2, 9, 104)) {
        reasm.input(1, 2, f);
    }
    ASSERT_TRUE(held.payload.valid());
    EXPECT_TRUE(held.payload.arenaBacked());
    EXPECT_EQ(held.payload, p.payload);       // gathered bytes are correct
    EXPECT_EQ(arena.outstandingChunks(), 1u);  // consumer still holds it

    held = ip6::Packet{};  // consumer done
    EXPECT_EQ(arena.outstandingChunks(), 0u);  // pressure released
}
