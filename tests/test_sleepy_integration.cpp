// Integration tests for the duty-cycled (sleepy) data path: TCP and CoAP
// over a polling leaf, the §9 application loop, and Appendix C behaviors.
#include <gtest/gtest.h>

#include "tcplp/app/bulk.hpp"
#include "tcplp/app/sensor.hpp"
#include "tcplp/coap/coap.hpp"
#include "tcplp/harness/anemometer.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

struct SleepyRig {
    std::unique_ptr<harness::Testbed> tb;
    mesh::Node* leaf = nullptr;

    explicit SleepyRig(mac::SleepyConfig sleepy, std::uint64_t seed = 1) {
        harness::TestbedConfig cfg;
        cfg.seed = seed;
        tb = std::make_unique<harness::Testbed>(cfg);
        tb->addBorderRouterAndCloud(1, {0.0, 0.0}, cfg.nodeDefaults);
        mesh::NodeConfig lc = cfg.nodeDefaults;
        lc.role = mesh::Role::kLeaf;
        lc.sleepyConfig = sleepy;
        leaf = &tb->addNode(10, {10.0, 0.0}, lc);
        leaf->setParent(1);
        tb->borderRouter().adoptSleepyChild(10);
        tb->borderRouter().addRoute(10, 10);
        leaf->start();
    }
};

TEST(SleepyTcp, HandshakeCompletesQuicklyWithTransportHint) {
    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kTransportHint;
    SleepyRig rig(sc);
    tcp::TcpStack leafStack(*rig.leaf);
    tcp::TcpStack cloudStack(rig.tb->cloud());
    cloudStack.listen(80, {}, [](tcp::TcpSocket&) {});

    tcp::TcpSocket& client = leafStack.createSocket({});
    sim::Time connectedAt = -1;
    client.setOnConnected([&] { connectedAt = rig.tb->simulator().now(); });
    client.connect(rig.tb->cloud().address(), 80);
    rig.tb->simulator().runUntil(30 * sim::kSecond);
    ASSERT_GE(connectedAt, 0);
    // The SYN-ACK rides the 100 ms rapid-poll cadence, not the 4 min idle one.
    EXPECT_LT(connectedAt, 2 * sim::kSecond);
}

TEST(SleepyTcp, UplinkRttTracksFixedSleepInterval) {
    // Appendix C.1's headline observation (self-clocking).
    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kFixed;
    sc.sleepInterval = 500 * sim::kMillisecond;
    SleepyRig rig(sc);
    tcp::TcpStack leafStack(*rig.leaf);
    tcp::TcpStack cloudStack(rig.tb->cloud());

    app::GoodputMeter meter(rig.tb->simulator());
    cloudStack.listen(80, {}, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = leafStack.createSocket({});
    app::BulkSender sender(client, 15000);
    client.connect(rig.tb->cloud().address(), 80);
    rig.tb->simulator().runUntil(5 * sim::kMinute);

    ASSERT_EQ(meter.bytes(), 15000u);
    EXPECT_NEAR(client.stats().rttSamples.median(), 550.0, 200.0);
}

TEST(SleepyTcp, DownlinkDeliversThroughIndirectQueue) {
    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kFixed;
    sc.sleepInterval = 300 * sim::kMillisecond;
    SleepyRig rig(sc);
    tcp::TcpStack leafStack(*rig.leaf);
    tcp::TcpStack cloudStack(rig.tb->cloud());

    app::GoodputMeter meter(rig.tb->simulator());
    leafStack.listen(7000, {}, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpConfig cloudCfg;
    cloudCfg.sendBufferBytes = cloudCfg.recvBufferBytes = 8192;
    tcp::TcpSocket& cloudSock = cloudStack.createSocket(cloudCfg);
    app::BulkSender sender(cloudSock, 10000);
    cloudSock.connect(rig.leaf->address(), 7000);
    rig.tb->simulator().runUntil(10 * sim::kMinute);

    EXPECT_EQ(meter.bytes(), 10000u);
    EXPECT_TRUE(meter.contentOk());
}

TEST(SleepyTcp, LeafRadioMostlyAsleepDuringIdleConnection) {
    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kTransportHint;
    SleepyRig rig(sc);
    tcp::TcpStack leafStack(*rig.leaf);
    tcp::TcpStack cloudStack(rig.tb->cloud());
    cloudStack.listen(80, {}, [](tcp::TcpSocket&) {});
    tcp::TcpSocket& client = leafStack.createSocket({});
    client.connect(rig.tb->cloud().address(), 80);
    rig.tb->simulator().runUntil(10 * sim::kSecond);
    ASSERT_EQ(client.state(), tcp::State::kEstablished);

    // Idle established connection: back to 4-minute polls, radio asleep.
    phy::Radio* radio = rig.leaf->radio();
    radio->energy().resetWindow(radio->state(), rig.tb->simulator().now());
    rig.tb->simulator().runUntil(rig.tb->simulator().now() + 10 * sim::kMinute);
    const double dc =
        radio->energy().radioDutyCycle(radio->state(), rig.tb->simulator().now());
    EXPECT_LT(dc, 0.005);  // < 0.5%
}

TEST(SleepyCoap, ConfirmableExchangeOverPollingLeaf) {
    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kTransportHint;
    SleepyRig rig(sc);
    transport::UdpStack leafUdp(*rig.leaf);
    transport::UdpStack cloudUdp(rig.tb->cloud());
    coap::CoapServer server(cloudUdp, 5683);
    coap::CoapClient client(leafUdp, rig.tb->cloud().address(), 5683, {});

    int delivered = 0;
    for (int i = 0; i < 5; ++i)
        client.postConfirmable(app::makeReading(10, std::uint32_t(i)),
                               [&](bool ok) { delivered += ok; });
    rig.tb->simulator().runUntil(2 * sim::kMinute);
    EXPECT_EQ(delivered, 5);
    EXPECT_EQ(server.requestsReceived(), 5u);
}

TEST(Anemometer, AllProtocolsReliableInFavorableConditions) {
    // §9.3: with no injected loss every setup reaches ~100% reliability.
    for (auto proto : {harness::SensorProtocol::kTcp, harness::SensorProtocol::kCoap,
                       harness::SensorProtocol::kUnreliable}) {
        harness::AnemometerOptions o;
        o.protocol = proto;
        o.duration = 8 * sim::kMinute;
        o.seed = 2;
        const auto r = harness::runAnemometer(o);
        EXPECT_GT(r.reliability, 0.97) << harness::protocolName(proto);
        EXPECT_GT(r.generated, 1500u);
    }
}

TEST(Anemometer, BatchingReducesCoapDutyCycle) {
    harness::AnemometerOptions batched;
    batched.protocol = harness::SensorProtocol::kCoap;
    batched.duration = 8 * sim::kMinute;
    harness::AnemometerOptions unbatched = batched;
    unbatched.batching = false;
    const auto rb = harness::runAnemometer(batched);
    const auto ru = harness::runAnemometer(unbatched);
    EXPECT_LT(rb.radioDutyCycle, ru.radioDutyCycle * 0.7);
}

TEST(Anemometer, HeavyInjectedLossBreaksCocoaBeforeCoap) {
    harness::AnemometerOptions o;
    o.duration = 12 * sim::kMinute;
    o.injectedLoss = 0.21;
    o.seed = 5;
    o.protocol = harness::SensorProtocol::kCoap;
    const auto coap = harness::runAnemometer(o);
    o.protocol = harness::SensorProtocol::kCocoa;
    const auto cocoa = harness::runAnemometer(o);
    EXPECT_GT(coap.reliability, cocoa.reliability);  // §9.4
}

TEST(DiurnalModel, LossHigherDuringWorkingHours) {
    const double night = harness::diurnalLossAt(3 * sim::kHour, 0.01, 0.12);
    EXPECT_LE(night, 0.95);  // may be a burst bucket
    // Compare the non-burst baseline by sampling several offsets.
    double nightMin = 1.0, noonMin = 1.0;
    for (int i = 0; i < 20; ++i) {
        nightMin = std::min(nightMin,
                            harness::diurnalLossAt(3 * sim::kHour + i * 977 * sim::kMillisecond,
                                                   0.01, 0.12));
        noonMin = std::min(noonMin,
                           harness::diurnalLossAt(12 * sim::kHour + i * 977 * sim::kMillisecond,
                                                  0.01, 0.12));
    }
    EXPECT_LT(nightMin, noonMin);
    EXPECT_NEAR(nightMin, 0.01, 0.005);
    EXPECT_NEAR(noonMin, 0.12, 0.02);
}

}  // namespace
