// End-to-end self-healing: permanent node death, alternate-parent
// failover, partition + failback, and the kFailed API surface.
//
// The load-bearing guarantees pinned here:
//
//  1. relay_failover (the PR's acceptance scenario): sensor 15's only
//     parent dies for good mid-transfer; the mesh repairs around it and
//     the flow completes with zero TCP give-ups.
//
//  2. partition_heal: every link at the sensor goes dark past the R2
//     budget — TCP gives up, the app reconnect ladder rides out the
//     outage, and after the heal the default route fails back to the
//     preferred parent.
//
//  3. kNodeFailure expansion is a pure function of (plan, seed), its
//     outage window is normalized to zero length, and its per-event
//     draw count matches the other kinds.
//
//  4. Overlapping faults compose: a reboot inside a node blackout on the
//     same node, serial vs sharded, merges to byte-identical rows.
//
//  5. kFailed is a terminal-but-polite state: send/sendZeroCopy return 0,
//     connect() is rejected cleanly, and rexmitGiveUps stays monotone.
#include <gtest/gtest.h>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/scenario/chaos.hpp"
#include "tcplp/scenario/sweep.hpp"
#include "tcplp/sim/fault.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

/// The registered relay_failover scenario, restated inline (the test binary
/// links no bench drivers): office tree, self-healing on, sensor 15's
/// first-hop relay 10 dies permanently at t=4s.
ScenarioSpec relayFailoverSpec() {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kOffice;
    s.topology.selfHealing = true;
    s.workload.totalBytes = 25000;
    s.workload.timeLimit = 10 * sim::kMinute;
    s.fault.chaos = true;
    s.fault.enabled = true;
    s.fault.plan.fixed = {{sim::FaultKind::kNodeFailure, 4 * sim::kSecond, 0, 10, 0}};
    return s;
}

/// The registered partition_heal scenario, restated inline: every link at
/// sensor 15 dark for 60s, R2 lowered so TCP gives up inside the outage.
ScenarioSpec partitionHealSpec() {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kOffice;
    s.topology.selfHealing = true;
    s.workload.totalBytes = 25000;
    s.workload.timeLimit = 10 * sim::kMinute;
    s.fault.chaos = true;
    s.fault.enabled = true;
    s.fault.maxRetransmits = 3;
    s.fault.plan.fixed = {
        {sim::FaultKind::kLinkBlackout, 5 * sim::kSecond, 60 * sim::kSecond, 15, 15}};
    return s;
}

}  // namespace

TEST(Failover, RelayDeathFailsOverAndCompletesWithoutGiveUps) {
    for (std::uint64_t seed : {1ull, 2ull}) {
        const ChaosBulkResult r = runChaosBulk(relayFailoverSpec(), seed);
        EXPECT_TRUE(r.complete) << "seed " << seed;
        EXPECT_TRUE(r.contentOk) << "seed " << seed;
        EXPECT_GE(r.reroutes, 1u) << "seed " << seed;
        EXPECT_EQ(r.giveUps, 0u) << "seed " << seed;
        EXPECT_EQ(r.reconnects, 0);
    }
}

TEST(Failover, PartitionPastR2ReconnectsAndFailsBack) {
    for (std::uint64_t seed : {1ull, 2ull}) {
        const ChaosBulkResult r = runChaosBulk(partitionHealSpec(), seed);
        EXPECT_TRUE(r.complete) << "seed " << seed;
        EXPECT_TRUE(r.contentOk) << "seed " << seed;
        EXPECT_GE(r.giveUps, 1u) << "seed " << seed;
        EXPECT_GE(r.reconnects, 1) << "seed " << seed;
        EXPECT_GE(r.reroutes, 1u) << "seed " << seed;
        EXPECT_GE(r.failbacks, 1u) << "seed " << seed;
    }
}

TEST(Failover, NodeFailureExpansionIsDeterministicWithZeroDuration) {
    sim::FaultPlan plan;
    sim::RandomFaultBurst burst;
    burst.kind = sim::FaultKind::kNodeFailure;
    burst.count = 3;
    burst.windowStart = 1 * sim::kSecond;
    burst.windowEnd = 30 * sim::kSecond;
    burst.durationMin = 2 * sim::kSecond;  // drawn, then normalized away
    burst.durationMax = 8 * sim::kSecond;
    burst.candidates = {4, 6, 8};
    plan.random = {burst};

    const auto a = sim::expandFaultPlan(plan, 42);
    const auto b = sim::expandFaultPlan(plan, 42);
    ASSERT_EQ(a.size(), 3u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].target, b[i].target);
        // Permanent: no outage window ever ends.
        EXPECT_EQ(a[i].duration, 0);
    }

    // The duration draw is still consumed, keeping the per-event draw
    // count uniform across kinds: a trailing burst expands identically
    // whether the leading one is failures or reboots.
    sim::RandomFaultBurst tail = burst;
    tail.kind = sim::FaultKind::kLinkBlackout;
    tail.candidates = {2};
    sim::FaultPlan failuresThenTail = plan;
    failuresThenTail.random.push_back(tail);
    sim::FaultPlan rebootsThenTail = plan;
    rebootsThenTail.random[0].kind = sim::FaultKind::kNodeReboot;
    rebootsThenTail.random.push_back(tail);
    const auto c = sim::expandFaultPlan(failuresThenTail, 42);
    const auto d = sim::expandFaultPlan(rebootsThenTail, 42);
    auto tailOf = [](const std::vector<sim::FaultEvent>& evs) {
        for (const sim::FaultEvent& e : evs)
            if (e.kind == sim::FaultKind::kLinkBlackout) return e;
        return sim::FaultEvent{};
    };
    EXPECT_EQ(tailOf(c).at, tailOf(d).at);
    EXPECT_EQ(tailOf(c).duration, tailOf(d).duration);
}

TEST(Failover, RebootInsideBlackoutMergesToSerialBytes) {
    // Overlapping faults on the same node: relay 10 reboots in the middle
    // of its own 20s blackout window. The timeline union must not double
    // count, and a sharded sweep must merge to the serial bytes.
    ScenarioDef def;
    def.name = "failover_overlap";
    def.base.topology.kind = TopologyKind::kLine;
    def.base.topology.hops = 2;
    def.base.topology.selfHealing = true;
    def.base.workload.totalBytes = 12000;
    def.base.workload.timeLimit = 5 * sim::kMinute;
    def.base.fault.chaos = true;
    def.base.fault.plan.fixed = {
        {sim::FaultKind::kLinkBlackout, 5 * sim::kSecond, 20 * sim::kSecond, 10, 10},
        {sim::FaultKind::kNodeReboot, 10 * sim::kSecond, 4 * sim::kSecond, 10, 0},
    };
    def.axes = {{"fault", {0, 1}}};
    def.seeds = {1, 2};
    def.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = faultFromAxis(p.value("fault"));
    };

    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions sharded;
    sharded.jobs = 4;
    const SweepResult a = runSweep(def, serial);
    const SweepResult b = runSweep(def, sharded);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.jsonLines(), b.jsonLines());
    // The union counts the overlap once: 20s window, reboot inside it.
    EXPECT_DOUBLE_EQ(a.mean("outage_s", {{"fault", 1.0}}), 20.0);
    for (const RunRecord& r : a.records)
        EXPECT_EQ(r.row.number("content_ok"), 1.0);
}

TEST(Failover, FailedSocketRejectsSendAndConnectCleanly) {
    // Drive a connection into kFailed over a dead pipe, then poke every
    // application entry point: none may assert, none may resurrect it.
    tcp::TcpConfig cfg;
    cfg.maxRetransmits = 2;
    sim::Simulator simulator(7);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());
    serverStack.listen(80, {}, [](tcp::TcpSocket& s) {
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = clientStack.createSocket(cfg);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(2 * sim::kSecond);
    ASSERT_EQ(client.state(), tcp::State::kEstablished);

    pipe.config().lossAtoB = 1.0;
    EXPECT_GT(client.send(toBytes("doomed")), 0u);
    simulator.runUntil(10 * sim::kMinute);
    ASSERT_EQ(client.state(), tcp::State::kFailed);
    EXPECT_EQ(client.stats().rexmitGiveUps, 1u);

    // Terminal state: the API stays safe and inert.
    EXPECT_EQ(client.send(toBytes("more")), 0u);
    EXPECT_EQ(client.sendZeroCopy(std::make_shared<const Bytes>(toBytes("z"))), 0u);
    client.connect(pipe.b().address(), 80);  // rejected, not asserted
    EXPECT_EQ(client.state(), tcp::State::kFailed);

    pipe.config().lossAtoB = 0.0;
    simulator.runUntil(simulator.now() + 5 * sim::kMinute);
    EXPECT_EQ(client.state(), tcp::State::kFailed);
    EXPECT_EQ(client.stats().rexmitGiveUps, 1u);  // monotone, counted once
}
