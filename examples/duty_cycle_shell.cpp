// A "remote shell" over TCP to a duty-cycled leaf — the §10 versatility
// argument: TCP's duplex bytestream supports interactive workloads that
// one-shot LLN protocols cannot express.
//
// A cloud-side client sends commands to a sleepy mote, which executes them
// and streams responses back, all over one TCP connection riding the
// adaptive-sleep-interval link of Appendix C.
#include <cstdio>

#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

int main() {
    harness::TestbedConfig config;
    auto testbed = std::make_unique<harness::Testbed>(config);
    mesh::NodeConfig rc;
    testbed->addBorderRouterAndCloud(1, {0.0, 0.0}, rc);

    mesh::NodeConfig leafCfg;
    leafCfg.role = mesh::Role::kLeaf;
    leafCfg.sleepyConfig.policy = mac::PollPolicy::kAdaptive;  // Appendix C.2
    mesh::Node& leaf = testbed->addNode(10, {10.0, 0.0}, leafCfg);
    leaf.setParent(1);
    testbed->borderRouter().adoptSleepyChild(10);
    testbed->borderRouter().addRoute(10, 10);
    leaf.start();

    tcp::TcpStack leafStack(leaf);
    tcp::TcpStack cloudStack(testbed->cloud());

    // The mote's "shell": answers each newline-terminated command.
    leafStack.listen(23, {}, [&](tcp::TcpSocket& session) {
        session.setOnData([&session, &leaf, &testbed](BytesView data) {
            const std::string cmd = toPrintable(data);
            std::printf("[mote ] t=%6.2fs executing: %s\n",
                        sim::toSeconds(testbed->simulator().now()), cmd.c_str());
            std::string reply;
            if (cmd.find("uptime") != std::string::npos) {
                reply = "uptime: " + std::to_string(sim::toSeconds(testbed->simulator().now())) +
                        "s\n";
            } else if (cmd.find("dutycycle") != std::string::npos) {
                const double dc = leaf.radio()->energy().radioDutyCycle(
                    leaf.radio()->state(), testbed->simulator().now());
                reply = "radio duty cycle: " + std::to_string(dc * 100.0) + "%\n";
            } else {
                reply = "ok\n";
            }
            session.send(toBytes(reply));
        });
        session.setOnPeerFin([&session] { session.close(); });
    });

    // Cloud-side operator: sends a command every ~20 s.
    tcp::TcpConfig opCfg;
    opCfg.sendBufferBytes = opCfg.recvBufferBytes = 4096;
    tcp::TcpSocket& op = cloudStack.createSocket(opCfg);
    op.setOnData([&](BytesView data) {
        std::printf("[cloud] t=%6.2fs reply: %s", sim::toSeconds(testbed->simulator().now()),
                    toPrintable(data).c_str());
    });
    const char* script[] = {"uptime\n", "dutycycle\n", "reboot --dry-run\n", "uptime\n"};
    op.setOnConnected([&] {
        for (int i = 0; i < 4; ++i) {
            testbed->simulator().schedule(sim::Time(i) * 20 * sim::kSecond,
                                          [&op, cmd = script[i]] { op.send(toBytes(cmd)); });
        }
        testbed->simulator().schedule(85 * sim::kSecond, [&op] { op.close(); });
    });
    op.connect(leaf.address(), 23);

    testbed->simulator().runUntil(3 * sim::kMinute);
    const double idleDc = leaf.radio()->energy().radioDutyCycle(
        leaf.radio()->state(), testbed->simulator().now());
    std::printf("\nsession done; leaf overall radio duty cycle: %.2f%% (adaptive sleep)\n",
                idleDc * 100.0);
    return 0;
}
