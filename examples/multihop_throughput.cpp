// Multihop throughput explorer (the §7 study, interactive form): bulk TCP
// upload from a mote N wireless hops from the border router, with a chosen
// link-retry delay d.
//
//   $ ./example_multihop_throughput [hops] [d_ms]
//   $ ./example_multihop_throughput 3 40
//
// Reports goodput, RTT, TCP loss events, and total frames — the quantities
// of Figs. 6/7 — and compares against the paper's B/min(h,3) bound.
#include <cstdio>
#include <cstdlib>

#include "tcplp/app/bulk.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/model/models.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

int main(int argc, char** argv) {
    const std::size_t hops = argc > 1 ? std::size_t(std::atoi(argv[1])) : 3;
    const int dMs = argc > 2 ? std::atoi(argv[2]) : 40;

    harness::TestbedConfig config;
    config.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(dMs);
    auto testbed = harness::Testbed::line(hops, config);
    mesh::Node& mote = *testbed->findNode(phy::NodeId(9 + hops));

    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(testbed->cloud());

    app::GoodputMeter meter(testbed->simulator());
    tcp::TcpConfig serverCfg;
    serverCfg.sendBufferBytes = serverCfg.recvBufferBytes = 16384;
    cloudStack.listen(80, serverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    tcp::TcpConfig moteCfg;  // paper defaults: MSS 462, 4-segment buffers
    tcp::TcpSocket& client = moteStack.createSocket(moteCfg);
    app::BulkSender sender(client, 100000);
    client.connect(testbed->cloud().address(), 80);
    testbed->simulator().runUntil(30 * sim::kMinute);

    std::printf("=== %zu hop(s), link-retry delay d=%d ms ===\n", hops, dMs);
    std::printf("delivered        : %zu bytes (%s)\n", meter.bytes(),
                meter.contentOk() ? "content verified" : "CORRUPT");
    std::printf("goodput          : %.1f kb/s\n", meter.goodputKbps());
    std::printf("RTT median       : %.0f ms\n", client.stats().rttSamples.median());
    std::printf("fast retransmits : %llu\n",
                (unsigned long long)client.stats().fastRetransmissions);
    std::printf("RTO timeouts     : %llu\n", (unsigned long long)client.stats().timeouts);
    std::printf("frames on air    : %llu\n",
                (unsigned long long)testbed->channel().framesTransmitted());
    std::printf("scheduling bound : B/min(h,3) = B x %.2f (Sec. 7.2)\n",
                model::multihopFactor(hops));
    return 0;
}
