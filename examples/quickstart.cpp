// Quickstart: open a TCP connection from a simulated mote to a cloud host
// across one 802.15.4 hop, send a message, and read the echo.
//
//   $ ./example_quickstart
//
// This walks the whole public API surface: build a testbed, attach TCP
// stacks, listen/connect, exchange bytes, close.
#include <cstdio>

#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

int main() {
    // One wireless hop: mote (id 10) <-> border router (id 1) <-> cloud.
    auto testbed = harness::Testbed::line(/*hops=*/1, {});
    mesh::Node& mote = *testbed->findNode(10);
    mesh::Node& cloud = testbed->cloud();

    // A TCP stack per endpoint. The same full-scale engine serves both the
    // constrained mote (2 KiB buffers) and the unconstrained server.
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(cloud);

    // Echo server on the cloud host.
    tcp::TcpConfig serverConfig;
    serverConfig.sendBufferBytes = serverConfig.recvBufferBytes = 8192;
    cloudStack.listen(7, serverConfig, [](tcp::TcpSocket& s) {
        s.setOnData([&s](BytesView data) {
            std::printf("[server] got %zu bytes: \"%s\" — echoing\n", data.size(),
                        toPrintable(data).c_str());
            s.send(data);
        });
        s.setOnPeerFin([&s] { s.close(); });
    });

    // Client on the mote.
    tcp::TcpSocket& client = moteStack.createSocket({});
    client.setOnConnected([&] {
        std::printf("[mote]   connected (MSS=%u, window=%zu B)\n", client.tcb().mss,
                    client.config().sendBufferBytes);
        client.send(toBytes("hello from the mote"));
    });
    client.setOnData([&](BytesView data) {
        std::printf("[mote]   echo received: \"%s\"\n", toPrintable(data).c_str());
        client.close();
    });
    client.connect(cloud.address(), 7);

    // Run the discrete-event simulation.
    testbed->simulator().runUntil(30 * sim::kSecond);

    std::printf("[mote]   final state: %s, RTT median %.0f ms, %llu segments sent\n",
                tcp::stateName(client.state()), client.stats().rttSamples.median(),
                (unsigned long long)client.stats().segsSent);
    return client.stats().bytesAcked > 0 ? 0 : 1;
}
