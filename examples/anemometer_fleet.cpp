// Anemometer fleet (the paper's §3/§9 application): four duty-cycled
// sensors in the 15-node office testbed stream 82-byte readings at 1 Hz to
// a cloud server. Run it with different transports:
//
//   $ ./example_anemometer_fleet            # TCPlp (default)
//   $ ./example_anemometer_fleet coap       # confirmable CoAP
//   $ ./example_anemometer_fleet cocoa      # CoAP + CoCoA
//   $ ./example_anemometer_fleet udp        # unreliable (non-confirmable)
//
// Prints reliability and radio/CPU duty cycle — the paper's §9 metrics.
#include <cstdio>
#include <cstring>

#include "tcplp/harness/anemometer.hpp"

using namespace tcplp;

int main(int argc, char** argv) {
    harness::AnemometerOptions options;
    options.protocol = harness::SensorProtocol::kTcp;
    if (argc > 1) {
        if (std::strcmp(argv[1], "coap") == 0) options.protocol = harness::SensorProtocol::kCoap;
        if (std::strcmp(argv[1], "cocoa") == 0)
            options.protocol = harness::SensorProtocol::kCocoa;
        if (std::strcmp(argv[1], "udp") == 0)
            options.protocol = harness::SensorProtocol::kUnreliable;
    }
    options.batching = true;          // batch 64 readings per transfer (§9.3)
    options.duration = 15 * sim::kMinute;

    std::printf("Running %s over the office testbed (4 sleepy sensors, 3-5 hops)...\n",
                harness::protocolName(options.protocol));
    const auto result = harness::runAnemometer(options);

    std::printf("\nresults over %.0f minutes:\n", sim::toSeconds(options.duration) / 60.0);
    std::printf("  readings generated : %llu\n", (unsigned long long)result.generated);
    std::printf("  readings delivered : %llu\n", (unsigned long long)result.delivered);
    std::printf("  reliability        : %.1f%%\n", result.reliability * 100.0);
    std::printf("  radio duty cycle   : %.2f%%\n", result.radioDutyCycle * 100.0);
    std::printf("  CPU duty cycle     : %.2f%%\n", result.cpuDutyCycle * 100.0);
    std::printf("  transport rexmits  : %llu\n",
                (unsigned long long)result.transportRetransmissions);
    return 0;
}
